package experiments

import (
	"strings"
	"testing"
	"time"
)

// The trace-derived Table 3 must agree with the monitoring-derived
// numbers: both observe the same invocations, one through span
// annotations, the other through published metric samples.
func TestTrace3AgreesWithMetrics(t *testing.T) {
	tr3, err := RunTrace3(60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.MedBilledTraces != tr3.MedBilledMetrics {
		t.Errorf("billed medians disagree: traces %v, metrics %v",
			tr3.MedBilledTraces, tr3.MedBilledMetrics)
	}
	// Run-time annotations are whole milliseconds; the metric keeps
	// sub-millisecond precision, so truncate before comparing.
	if want := tr3.MedRunMetrics.Truncate(time.Millisecond); tr3.MedRunTraces != want {
		t.Errorf("run medians disagree: traces %v, metrics %v (truncated %v)",
			tr3.MedRunTraces, tr3.MedRunMetrics, want)
	}
	// The calibrated Table 3 ballpark: 200 ms billed, ~134 ms run.
	if tr3.MedBilledTraces != 200*time.Millisecond {
		t.Errorf("med billed = %v, want 200ms", tr3.MedBilledTraces)
	}
	if tr3.MedRunTraces < 120*time.Millisecond || tr3.MedRunTraces > 150*time.Millisecond {
		t.Errorf("med run = %v, want ≈134ms", tr3.MedRunTraces)
	}
	if tr3.MedCostPerSend <= 0 {
		t.Error("median cost per send is zero")
	}
	// The breakdown covers the three services a send touches, and the
	// in-function time they account for fits inside the run time.
	var inside time.Duration
	for _, s := range tr3.Breakdown {
		if s.Calls < 1 {
			t.Errorf("%s: %d calls", s.Service, s.Calls)
		}
		inside += s.MedTotal
	}
	if inside <= 0 || inside > tr3.MedRunTraces+50*time.Millisecond {
		t.Errorf("service breakdown %v inconsistent with run %v", inside, tr3.MedRunTraces)
	}
	out := tr3.Render()
	for _, frag := range []string{"re-derived from distributed traces", "chat-send", "lambda", "$"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}
