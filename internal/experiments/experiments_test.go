package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/metrics"
	"repro/internal/core"
	"repro/internal/pricing"
)

func dollars(d float64) pricing.Money { return pricing.FromDollars(d) }

func TestTable1MatchesPaper(t *testing.T) {
	t1, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if got := t1.Transfer.RoundCents(); got != dollars(0.09) {
		t.Errorf("transfer = %v, paper $0.09", got)
	}
	if got := t1.Storage.RoundCents(); got != dollars(0.17) {
		t.Errorf("storage = %v, paper $0.17", got)
	}
	if got := t1.Compute.RoundCents(); got != dollars(4.32) {
		t.Errorf("compute = %v, paper $4.32", got)
	}
	if got := t1.Total.RoundCents(); got != dollars(4.58) {
		t.Errorf("total = %v, paper $4.58", got)
	}
	if t1.ReplicatedTotal <= t1.Total {
		t.Error("HA total not larger than single-region total")
	}
	if !strings.Contains(t1.Render(), "$4.58") {
		t.Error("render missing total")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	want := map[string]struct {
		compute, storXfer, total pricing.Money
	}{
		"Group Chat":         {dollars(0.00), dollars(0.14), dollars(0.14)},
		"Email":              {dollars(0.00), dollars(0.26), dollars(0.26)},
		"File Transfer":      {dollars(0.00), dollars(0.14), dollars(0.14)},
		"IoT Controller":     {dollars(0.00), dollars(0.12), dollars(0.12)},
		"Video Conferencing": {dollars(0.01), dollars(0.83), dollars(0.84)},
	}
	rows := RunTable2()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Profile.Application]
		if !ok {
			t.Errorf("unexpected row %q", r.Profile.Application)
			continue
		}
		if got := r.ComputeCost.RoundCents(); got != w.compute {
			t.Errorf("%s compute = %v, paper %v", r.Profile.Application, got, w.compute)
		}
		if got := r.StorageTransferCost.RoundCents(); got != w.storXfer {
			t.Errorf("%s storage+transfer = %v, paper %v", r.Profile.Application, got, w.storXfer)
		}
		if got := r.Total.RoundCents(); got != w.total {
			t.Errorf("%s total = %v, paper %v", r.Profile.Application, got, w.total)
		}
	}
	rendered := RenderTable2(rows)
	for app := range want {
		if !strings.Contains(rendered, app) {
			t.Errorf("render missing %q", app)
		}
	}
}

func TestTable2FullAccountingOrdering(t *testing.T) {
	rows := RunTable2FullAccounting()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FullTotal < r.Total {
			t.Errorf("%s full total below paper-convention total", r.Profile.Application)
		}
		// Even with full accounting, every DIY service stays far below
		// the $4.58 strawman — the paper's conclusion survives the
		// omitted fees.
		if r.Profile.Provider == "Lambda" && r.FullTotal.Dollars() > 1.0 {
			t.Errorf("%s full total %v exceeds $1", r.Profile.Application, r.FullTotal)
		}
	}
	if !strings.Contains(RenderFullAccounting(rows), "Req. fees") {
		t.Error("full accounting render incomplete")
	}
}

func TestTable3MatchesPaperShape(t *testing.T) {
	t3, err := RunTable3(Table3Config{Sends: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: billed 200 ms, run 134 ms, E2E 211 ms, 448 MB alloc,
	// 51 MB peak. Medians must land within tight bands.
	if t3.MedBilled != 200*time.Millisecond {
		t.Errorf("median billed = %v, paper 200ms", t3.MedBilled)
	}
	if t3.MedRun < 120*time.Millisecond || t3.MedRun > 150*time.Millisecond {
		t.Errorf("median run = %v, paper 134ms", t3.MedRun)
	}
	if t3.MedE2E < 190*time.Millisecond || t3.MedE2E > 235*time.Millisecond {
		t.Errorf("median E2E = %v, paper 211ms", t3.MedE2E)
	}
	if t3.AllocatedMB != 448 {
		t.Errorf("allocated = %d, paper 448", t3.AllocatedMB)
	}
	if t3.PeakMemoryMB < 45 || t3.PeakMemoryMB > 60 {
		t.Errorf("peak memory = %d MB, paper 51", t3.PeakMemoryMB)
	}
	// Run must be strictly below billed (the quantum gap).
	if t3.MedRun >= t3.MedBilled {
		t.Error("run >= billed")
	}
	// Marginal cost per 100k requests: $0.146 of GB-seconds + $0.02 of
	// request fees ≈ $0.17 (the paper prints $0.014 — a 10x slip; see
	// EXPERIMENTS.md).
	if c := t3.CostPer100K.Dollars(); c < 0.10 || c > 0.25 {
		t.Errorf("cost per 100k = %v, want ≈$0.17", t3.CostPer100K)
	}
	if !strings.Contains(t3.Render(), "Med. Lambda Time Billed") {
		t.Error("render incomplete")
	}
}

func TestFigure1InvariantsHold(t *testing.T) {
	tr, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OK() {
		t.Fatalf("invariants failed: %+v", tr)
	}
	if len(tr.Steps) < 5 {
		t.Fatalf("trace too short: %v", tr.Steps)
	}
	if !strings.Contains(tr.Render(), "invariants hold: true") {
		t.Error("render incomplete")
	}
}

func TestClaims(t *testing.T) {
	c, err := RunClaims()
	if err != nil {
		t.Fatal(err)
	}
	// Who wins and by what factor: DIY email is >15x cheaper than one
	// always-on VM and >30x cheaper than the 2-region HA config the
	// abstract compares against.
	if c.SavingsVsSingleEC2 < 15 {
		t.Errorf("savings vs single EC2 = %.1fx, want > 15x", c.SavingsVsSingleEC2)
	}
	if c.SavingsVsHAEC2 < 30 {
		t.Errorf("savings vs HA EC2 = %.1fx, want > 30x", c.SavingsVsHAEC2)
	}
	if got := c.HourLongHDCall.RoundCents(); got != dollars(0.11) {
		t.Errorf("hour-long HD call = %v, paper $0.11", got)
	}
	// "compute cost ... remains free until roughly 33,000 emails ...
	// daily".
	if c.EmailFreeCrossover < 30_000 || c.EmailFreeCrossover > 36_000 {
		t.Errorf("email crossover = %.0f/day, paper ~33,000", c.EmailFreeCrossover)
	}
	if !c.ChatFreeAt2000PerDay {
		t.Error("chat at 2000/day should be compute-free")
	}
	// §6.2: "Users can send over 25,000 messages per day without
	// incurring any compute cost."
	if c.ChatPrototypeFreeCrossover < 25_000 {
		t.Errorf("prototype crossover %.0f/day, paper claims > 25,000", c.ChatPrototypeFreeCrossover)
	}
	if !strings.Contains(c.Render(), "50x") {
		t.Error("render incomplete")
	}
}

func TestMemorySweepShape(t *testing.T) {
	points, err := RunMemorySweep(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("points = %d", len(points))
	}
	byMem := make(map[int]MemoryPoint)
	for _, p := range points {
		byMem[p.MemoryMB] = p
	}
	// The paper's observation: 128 MB is much slower than 448 MB.
	if byMem[128].MedRun < 2*byMem[448].MedRun {
		t.Errorf("128 MB run %v not >> 448 MB run %v", byMem[128].MedRun, byMem[448].MedRun)
	}
	// Beyond the reference allocation, gains flatten out.
	if byMem[1536].MedRun > byMem[448].MedRun {
		t.Errorf("1536 MB run %v slower than 448 MB %v", byMem[1536].MedRun, byMem[448].MedRun)
	}
	if !strings.Contains(RenderMemorySweep(points), "Mem(MB)") {
		t.Error("render incomplete")
	}
}

func TestDIYvsEC2Crossover(t *testing.T) {
	points := RunDIYvsEC2Crossover()
	// DIY must win at the paper's rates and lose at extreme volume,
	// with a single crossover in between.
	if !points[0].LambdaWins {
		t.Error("DIY loses at 100 req/day")
	}
	last := points[len(points)-1]
	if last.LambdaWins {
		t.Error("DIY still wins at 10M req/day; crossover missing")
	}
	flips := 0
	for i := 1; i < len(points); i++ {
		if points[i].LambdaWins != points[i-1].LambdaWins {
			flips++
		}
	}
	if flips != 1 {
		t.Errorf("crossover flips %d times, want exactly 1", flips)
	}
	if !strings.Contains(RenderCrossover(points), "DIY wins") {
		t.Error("render incomplete")
	}
}

func TestColdStartAblation(t *testing.T) {
	points, err := RunColdStartAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	// Cold-start fraction decreases with request rate.
	first, last := points[0], points[len(points)-1]
	if first.ColdFraction <= last.ColdFraction {
		t.Errorf("cold fraction not decreasing: %.2f at %.0f/day vs %.2f at %.0f/day",
			first.ColdFraction, first.DailyRequests, last.ColdFraction, last.DailyRequests)
	}
	// At 10 req/day (2.4 h gaps vs 5 min TTL) essentially every start
	// is cold; at 10k/day (8.6 s gaps) almost none are.
	if first.ColdFraction < 0.9 {
		t.Errorf("10/day cold fraction %.2f, want ≈1", first.ColdFraction)
	}
	if last.ColdFraction > 0.05 {
		t.Errorf("10k/day cold fraction %.2f, want ≈0", last.ColdFraction)
	}
	if !strings.Contains(RenderColdStarts(points), "Fraction") {
		t.Error("render incomplete")
	}
}

func TestPollIntervalAblation(t *testing.T) {
	points := RunPollIntervalAblation()
	// The paper's stated configuration: 20 s polls stay inside the
	// free tier (~132k polls/month).
	last := points[len(points)-1]
	if last.Interval != 20*time.Second || !last.InsideFreeTier {
		t.Errorf("20 s polls not free: %+v", last)
	}
	if last.PollsPerMonth < 125_000 || last.PollsPerMonth > 140_000 {
		t.Errorf("20 s polls/month = %.0f, want ~132k", last.PollsPerMonth)
	}
	// The paper's *count* (876,000/month) corresponds to the 3 s row,
	// which is also free — the claim holds under either reading.
	var threeSec PollPoint
	for _, p := range points {
		if p.Interval == 3*time.Second {
			threeSec = p
		}
	}
	if threeSec.PollsPerMonth < 850_000 || threeSec.PollsPerMonth > 900_000 {
		t.Errorf("3 s polls/month = %.0f, paper's count 876,000", threeSec.PollsPerMonth)
	}
	if !threeSec.InsideFreeTier {
		t.Error("3 s polls not free")
	}
	// 1 s polls are not free.
	if points[0].InsideFreeTier {
		t.Error("1 s polls inside free tier")
	}
	if !strings.Contains(RenderPollInterval(points), "Polls/month") {
		t.Error("render incomplete")
	}
}

func TestFreeTierCrossoverDegenerate(t *testing.T) {
	// Zero-compute profile: the request tier binds.
	p := Profile{ComputePerRequest: 0, LambdaMemMB: 128}
	got := FreeTierCrossoverPerDay(p)
	if got < 33_000 || got > 34_000 {
		t.Fatalf("crossover = %v, want 1M/30", got)
	}
	// Heavy profile: GB-seconds bind first.
	heavy := Profile{ComputePerRequest: 10 * time.Second, LambdaMemMB: 1536}
	if FreeTierCrossoverPerDay(heavy) >= got {
		t.Fatal("heavy profile should cross over earlier")
	}
}

func TestBackendComparison(t *testing.T) {
	points, err := RunBackendComparison(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	s3p, dyn := points[0], points[1]
	if s3p.Backend != "s3" || dyn.Backend != "dynamo" {
		t.Fatalf("backends = %q, %q", s3p.Backend, dyn.Backend)
	}
	// The footnote's point: the table store is significantly faster,
	// enough to drop a billing quantum.
	if float64(dyn.MedRun) > 0.7*float64(s3p.MedRun) {
		t.Errorf("dynamo run %v not ≪ s3 run %v", dyn.MedRun, s3p.MedRun)
	}
	if dyn.MedBilled >= s3p.MedBilled {
		t.Errorf("dynamo billed %v not below s3 billed %v", dyn.MedBilled, s3p.MedBilled)
	}
	if !strings.Contains(RenderBackends(points), "dynamo") {
		t.Error("render incomplete")
	}
}

func TestStreamingComparison(t *testing.T) {
	points, err := RunStreamingComparison(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	perReq, open, susp := points[0], points[1], points[2]
	// At 10-minute gaps, every per-request invocation cold starts.
	if perReq.MedLatency < 150*time.Millisecond {
		t.Errorf("per-request latency %v, expected cold-start dominated", perReq.MedLatency)
	}
	// The naive open connection bills roughly the whole hour.
	if open.BilledCompute < 55*time.Minute {
		t.Errorf("open connection billed %v, want ≈1h", open.BilledCompute)
	}
	// Suspend/resume bills within ~20x of per-request (seconds, not
	// the hour) — the §8.3 extension's point.
	if susp.BilledCompute > open.BilledCompute/10 {
		t.Errorf("suspend/resume billed %v, not ≪ open connection %v", susp.BilledCompute, open.BilledCompute)
	}
	if susp.Cost >= open.Cost {
		t.Errorf("suspend/resume cost %v not below open connection %v", susp.Cost, open.Cost)
	}
	// And its per-message latency beats per-request (no dispatch, no
	// full cold start).
	if susp.MedLatency >= perReq.MedLatency {
		t.Errorf("suspend/resume latency %v not below per-request %v", susp.MedLatency, perReq.MedLatency)
	}
	if !strings.Contains(RenderStreaming(points), "suspend/resume") {
		t.Error("render incomplete")
	}
}

func TestVideoHostingComparison(t *testing.T) {
	points := RunVideoHostingComparison()
	byMode := make(map[string]VideoHostPoint)
	for _, p := range points {
		byMode[p.Mode] = p
	}
	ec2 := byMode["ec2 t2.medium (paper)"]
	lambdaList := byMode["lambda conn (list price)"]
	// The paper's Table 2 compute arithmetic: 30 x 15-min t2.medium
	// calls ≈ $0.35/month.
	if d := ec2.MonthlyCost.Dollars(); d < 0.30 || d > 0.40 {
		t.Errorf("ec2 monthly = %v, want ≈$0.35", ec2.MonthlyCost)
	}
	// At list price, a sustained serverless relay is more expensive
	// than the VM — the design-choice justification.
	if lambdaList.MonthlyCost <= ec2.MonthlyCost {
		t.Errorf("lambda list %v not above ec2 %v", lambdaList.MonthlyCost, ec2.MonthlyCost)
	}
	// And 2017 Lambda could not host it at all.
	if byMode["lambda per-request (2017)"].Feasible {
		t.Error("per-request hosting marked feasible")
	}
	if !strings.Contains(RenderVideoHosting(points), "why the paper chose EC2") {
		t.Error("render incomplete")
	}
}

func TestTable3SeedRobustness(t *testing.T) {
	// The calibration must not be overfit to one RNG seed: across
	// different latency-model seeds the medians stay in the paper's
	// neighborhood and billed time stays pinned at the 200 ms quantum.
	for _, seed := range []int64{2, 7, 1234} {
		t3, err := RunTable3(Table3Config{Sends: 120, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if t3.MedBilled != 200*time.Millisecond {
			t.Errorf("seed %d: billed %v, want 200ms", seed, t3.MedBilled)
		}
		if t3.MedRun < 120*time.Millisecond || t3.MedRun > 150*time.Millisecond {
			t.Errorf("seed %d: run %v outside [120,150]ms", seed, t3.MedRun)
		}
		if t3.MedE2E < 190*time.Millisecond || t3.MedE2E > 235*time.Millisecond {
			t.Errorf("seed %d: E2E %v outside [190,235]ms", seed, t3.MedE2E)
		}
	}
}

func TestTable3AgreesWithMonitoring(t *testing.T) {
	// The harness measures Table 3 from returned InvocationStats; the
	// monitoring service (the paper's actual measurement path —
	// CloudWatch) must independently agree on the medians.
	cloud, err := core.NewCloud(core.CloudOptions{Name: "monitored"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := chat.Install(cloud, "proto", chat.App{Members: []string{"alice", "bob"}})
	if err != nil {
		t.Fatal(err)
	}
	alice := chat.NewClient(d, "alice", "laptop")
	if _, err := alice.Session(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		cloud.Clock.Advance(40 * time.Second)
		if _, err := alice.Send("monitored send"); err != nil {
			t.Fatal(err)
		}
	}
	var zero time.Time
	medRun := cloud.Metrics.Percentile(d.FnName, metrics.MetricLambdaRunMs, zero, zero, 50)
	medBilled := cloud.Metrics.Percentile(d.FnName, metrics.MetricLambdaBilledMs, zero, zero, 50)
	peak := cloud.Metrics.Max(d.FnName, metrics.MetricLambdaPeakMB, zero, zero)
	coldSum := cloud.Metrics.Sum(d.FnName, metrics.MetricLambdaCold, zero, zero)
	if medRun < 120 || medRun > 150 {
		t.Errorf("monitored median run = %v ms", medRun)
	}
	if medBilled != 200 {
		t.Errorf("monitored median billed = %v ms", medBilled)
	}
	if peak < 45 || peak > 60 {
		t.Errorf("monitored peak = %v MB", peak)
	}
	// Only the very first invocation (the session) cold-started.
	if coldSum != 1 {
		t.Errorf("monitored cold starts = %v", coldSum)
	}
	if n := cloud.Metrics.Count(d.FnName, metrics.MetricLambdaRunMs, zero, zero); n != 101 {
		t.Errorf("monitored samples = %d, want 101", n)
	}
}

func TestDDoSCostStudy(t *testing.T) {
	points, err := RunDDoSCostStudy(5_000)
	if err != nil {
		t.Fatal(err)
	}
	open, throttled := points[0], points[1]
	if open.Throttled || !throttled.Throttled {
		t.Fatalf("point order wrong: %+v", points)
	}
	// Unthrottled, every attack request bills a 500 ms invocation.
	if open.BilledInvokes != float64(open.AttackRequests) {
		t.Errorf("open billed %v of %d", open.BilledInvokes, open.AttackRequests)
	}
	// The throttle caps the damage to the burst.
	if throttled.BilledInvokes > 50 {
		t.Errorf("throttled billed %v invokes", throttled.BilledInvokes)
	}
	// Cost gap of two orders of magnitude or more.
	if throttled.ListCost*100 > open.ListCost {
		t.Errorf("throttle saved too little: %v vs %v", throttled.ListCost, open.ListCost)
	}
	if !strings.Contains(RenderDDoS(points), "throttle 5 rps") {
		t.Error("render incomplete")
	}
}

func TestSustainedAttackMonthly(t *testing.T) {
	// 30M requests x (request fee + 0.0625 GB-s): ≈ $37/month — two
	// orders of magnitude above the entire DIY budget, hence §8.2's
	// concern.
	got := SustainedAttackMonthly().Dollars()
	if got < 25 || got > 50 {
		t.Fatalf("sustained attack = $%.2f, want ≈$37", got)
	}
}

func TestTable2MeasuredAgreesWithClosedForm(t *testing.T) {
	rows, err := RunTable2Measured(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Poisson noise: allow a 4-sigma band around the target rate.
		sigma := math.Sqrt(r.TargetPerDay)
		if math.Abs(r.MeasuredPerDay-r.TargetPerDay) > 4*sigma {
			t.Errorf("%s measured %.0f/day vs target %.0f (4σ=%.0f)",
				r.Application, r.MeasuredPerDay, r.TargetPerDay, 4*sigma)
		}
		// The closed-form Table 2's conclusion: compute is free at
		// these rates.
		if r.ComputeCost != 0 {
			t.Errorf("%s measured compute = %v, want $0.00", r.Application, r.ComputeCost)
		}
		// And the month's GB-seconds stay inside the 400k allowance.
		if r.GBSecondsMonth >= 400_000 {
			t.Errorf("%s GB-s/month = %.0f", r.Application, r.GBSecondsMonth)
		}
	}
}
