package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/trace"
	"repro/internal/core"
	"repro/internal/pricing"
)

// XRay3 re-derives Table 3's billed-time numbers from the X-Ray-sim
// trace *store* rather than from live client-side trace objects: every
// number below is read back out of columnar storage through
// TraceView/SegmentView handles, filter-expression queries, and the
// service-map and critical-path analytics — the exposition that the
// store loses nothing the live span trees had, plus what aggregates
// cannot provide (where the wall time goes, per-request dollars, and
// what the tracing itself would have billed).
type XRay3 struct {
	Samples int

	// ColdStarts counts sends matching the filter expression
	// `annotation.cold_start = true` — the query-derived form of the
	// stats-derived count Table 3 reports.
	ColdStarts int
	// SlowSends counts sends matching `duration > 500ms`.
	SlowSends int

	// Billed/run medians from the stored lambda-segment annotations.
	MedBilled time.Duration
	MedRun    time.Duration
	// MedDuration is the median stored root duration (client-observed).
	MedDuration time.Duration
	// MedCostPerSend is the median list-price cost of one stored trace.
	MedCostPerSend pricing.Money

	// Map and Crit are the analytics derived from the same storage.
	Map  *trace.ServiceMap
	Crit *trace.CriticalProfile

	// Stats and XRayCost are the store's own billable inventory: what
	// recording and scanning these traces would cost at 2017 X-Ray
	// list price ($5.00/M recorded, $0.50/M scanned).
	Stats    trace.StoreStats
	XRayCost pricing.Money

	// Example is the first stored trace rendered from the store.
	Example string
}

// RunXRay3 deploys the chat prototype, sends traced messages with
// sampling off (every trace kept — the single-account default), and
// derives the Table 3 numbers from the trace store's columns.
func RunXRay3(sends int, seed int64) (*XRay3, error) {
	if sends <= 0 {
		sends = 200
	}
	opts := core.CloudOptions{Name: "xray3"}
	if seed != 0 {
		params := netsim.DefaultParams()
		params.Seed = seed
		opts.NetParams = &params
	}
	cloud, err := core.NewCloud(opts)
	if err != nil {
		return nil, err
	}
	d, err := chat.Install(cloud, "proto", chat.App{
		Members:  []string{"alice", "bob"},
		MemoryMB: 448,
	})
	if err != nil {
		return nil, err
	}
	alice := chat.NewClient(d, "alice", "laptop")
	bob := chat.NewClient(d, "bob", "phone")
	if _, err := alice.Session(); err != nil {
		return nil, err
	}
	if _, err := bob.Session(); err != nil {
		return nil, err
	}

	// Drive the sends without keeping any client-side trace object:
	// everything below must come back out of the store.
	for i := 0; i < sends; i++ {
		cloud.Clock.Advance(40 * time.Second)
		if _, _, err := alice.SendTraced(fmt.Sprintf("traced message %d", i)); err != nil {
			return nil, fmt.Errorf("xray3 send %d: %w", i, err)
		}
	}

	st := cloud.Tracer
	views := st.Stored()
	if len(views) != sends {
		return nil, fmt.Errorf("xray3: stored %d traces, want %d", len(views), sends)
	}

	var billed, run, durs []time.Duration
	var costs []pricing.Money
	for i, v := range views {
		lsp, ok := v.Find("lambda", d.FnName)
		if !ok {
			return nil, fmt.Errorf("xray3 trace %d: no lambda segment", i)
		}
		b, err := storedMillis(lsp, "billed_ms")
		if err != nil {
			return nil, fmt.Errorf("xray3 trace %d: %w", i, err)
		}
		r, err := storedMillis(lsp, "run_ms")
		if err != nil {
			return nil, fmt.Errorf("xray3 trace %d: %w", i, err)
		}
		billed = append(billed, b)
		run = append(run, r)
		durs = append(durs, v.Duration())
		costs = append(costs, v.Cost(cloud.Book))
	}

	cold, err := st.Query(`annotation.cold_start = true`, cloud.Book, time.Time{}, time.Time{})
	if err != nil {
		return nil, fmt.Errorf("xray3 cold query: %w", err)
	}
	slow, err := st.Query(`duration > 500ms`, cloud.Book, time.Time{}, time.Time{})
	if err != nil {
		return nil, fmt.Errorf("xray3 slow query: %w", err)
	}

	out := &XRay3{
		Samples:        sends,
		ColdStarts:     len(cold),
		SlowSends:      len(slow),
		MedBilled:      nearestRankDur(billed, 50),
		MedRun:         nearestRankDur(run, 50),
		MedDuration:    nearestRankDur(durs, 50),
		MedCostPerSend: medianMoney(costs),
		Map:            st.ServiceMap(cloud.Book, time.Time{}, time.Time{}),
		Crit:           st.CriticalProfile(time.Time{}, time.Time{}),
		Example:        views[0].Render(cloud.Book),
	}
	// Take the inventory last so the golden pins the scan count of the
	// exact read sequence above.
	out.Stats = st.Stats()
	for _, u := range st.Usage() {
		out.XRayCost += cloud.Book.ListPrice(u)
	}
	return out, nil
}

// Render prints the store-derived Table 3 with the analytics.
func (x *XRay3) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3 re-derived from the X-Ray-sim trace store\n")
	fmt.Fprintf(&sb, "  %-38s %10v\n", "Med. Lambda Time Billed", x.MedBilled.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10v\n", "Med. Lambda Time Run", x.MedRun.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10v\n", "Med. trace duration", x.MedDuration.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10s\n", "Med. cost per send (list price)", fmt.Sprintf("$%.8f", x.MedCostPerSend.Dollars()))
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(samples)", x.Samples)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(cold starts, by annotation query)", x.ColdStarts)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(sends slower than 500ms, by query)", x.SlowSends)
	sb.WriteString("  service map:\n")
	indentInto(&sb, x.Map.Render())
	sb.WriteString("  critical path:\n")
	indentInto(&sb, x.Crit.Render())
	fmt.Fprintf(&sb, "  x-ray inventory: %d decided, %d kept, %d stored, %d scanned; list price $%.8f\n",
		x.Stats.Decided, x.Stats.Kept, x.Stats.Stored, x.Stats.Scanned, x.XRayCost.Dollars())
	sb.WriteString("  example trace (first send, rendered from storage):\n")
	indentInto(&sb, x.Example)
	return sb.String()
}

// indentInto appends a rendered block indented two levels.
func indentInto(sb *strings.Builder, block string) {
	for _, line := range strings.Split(strings.TrimRight(block, "\n"), "\n") {
		sb.WriteString("    " + line + "\n")
	}
}

// storedMillis reads a millisecond annotation from a stored segment.
func storedMillis(g trace.SegmentView, key string) (time.Duration, error) {
	v, ok := g.Annotation(key)
	if !ok {
		return 0, fmt.Errorf("segment %s %s: no %s annotation", g.Service(), g.Op(), key)
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("segment %s %s: bad %s: %w", g.Service(), g.Op(), key, err)
	}
	return time.Duration(ms) * time.Millisecond, nil
}
