package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/netsim"
	"repro/internal/core"
	"repro/internal/pricing"
)

// Metrics3 re-derives Table 3 purely from the monitoring service — no
// access to InvocationStats or traces, only the series the lambda
// platform and the plane interceptor auto-publish as the workload
// runs. This is how the paper's numbers were actually collected (they
// are CloudWatch statistics), and it closes the loop on the DIY
// argument: a self-hosted operator gets the same dashboard the
// provider would sell them, plus the line on the bill that dashboard
// itself would cost.
type Metrics3 struct {
	Samples int

	// The Table 3 headline stats, from the per-function lambda series
	// over the measurement window (sends only, like Table 3).
	MedBilled    time.Duration
	MedRunMs     float64 // nearest-rank p50 of lambda.run.ms
	PeakMemoryMB int64
	ColdStarts   int
	// Invocations counts the lambda plane.requests series over the
	// same window — one per send, a consistency check between the
	// interceptor's RED series and the platform's own samples.
	Invocations int

	// Rows is the whole run's per-(service, op) RED+cost table from
	// the interceptor-published series.
	Rows []metrics.OpStat

	// What observing all of the above would cost at CloudWatch's 2017
	// prices: the series/alarm inventory, its list price, and the bill
	// after the 10-metric/10-alarm free tier.
	SeriesCount int
	AlarmCount  int
	ObsList     pricing.Money
	ObsBilled   pricing.Money

	// The monthly budget alarm watching the account spend gauge, and
	// the transitions it went through during the run.
	Budget            pricing.Money
	BudgetTransitions []metrics.Transition
}

// metrics3Budget is the budget alarm's threshold: low enough that the
// default 200-send run crosses it partway through, demonstrating the
// OK -> ALARM transition on real spend.
var metrics3Budget = pricing.FromDollars(0.001)

// metrics3AlarmPeriod is the budget alarm's evaluation period.
const metrics3AlarmPeriod = 30 * time.Minute

// RunMetrics3 drives the exact Table 3 workload, then reconstructs the
// table from the metrics service alone.
func RunMetrics3(cfg Table3Config) (*Metrics3, error) {
	if cfg.Sends <= 0 {
		cfg.Sends = 200
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 448
	}
	if cfg.GapBetweenSends <= 0 {
		cfg.GapBetweenSends = 40 * time.Second
	}

	opts := core.CloudOptions{Name: "metrics3"}
	if cfg.Seed != 0 {
		params := netsim.DefaultParams()
		params.Seed = cfg.Seed
		opts.NetParams = &params
	}
	cloud, err := core.NewCloud(opts)
	if err != nil {
		return nil, err
	}

	// The budget alarm goes in before any spend, anchored at the
	// clock's epoch so the evaluation grid is reproducible.
	budgetAlarm, err := cloud.Metrics.PutAlarm(
		metrics.BudgetAlarm("monthly-budget", metrics3Budget, metrics3AlarmPeriod),
		cloud.Clock.Now(), nil)
	if err != nil {
		return nil, err
	}

	// The workload is RunTable3's, call for call, so the latency
	// model's random stream — and therefore every published sample —
	// matches the pinned Table 3 goldens.
	d, err := chat.Install(cloud, "proto", chat.App{
		Members:  []string{"alice", "bob"},
		MemoryMB: cfg.MemoryMB,
		Backend:  cfg.Backend,
	})
	if err != nil {
		return nil, err
	}
	alice := chat.NewClient(d, "alice", "laptop")
	bob := chat.NewClient(d, "bob", "phone")
	if _, err := alice.Session(); err != nil {
		return nil, err
	}
	if _, err := bob.Session(); err != nil {
		return nil, err
	}

	var measureFrom time.Time
	for i := 0; i < cfg.Sends; i++ {
		cloud.Clock.Advance(cfg.GapBetweenSends)
		if i == 0 {
			// Measurement window opens after the session-initiation
			// invocations, before the first send — Table 3 measures
			// sends only.
			measureFrom = cloud.Clock.Now()
		}
		sendStart := cloud.Clock.Now()
		if _, _, err := alice.SendTimed(fmt.Sprintf("message %d from the prototype run", i)); err != nil {
			return nil, fmt.Errorf("metrics3 send %d: %w", i, err)
		}
		pollCtx := bob.PollContext(sendStart)
		msgs, err := bob.Receive(pollCtx, 20*time.Second)
		if err != nil {
			return nil, fmt.Errorf("metrics3 receive %d: %w", i, err)
		}
		if len(msgs) != 1 {
			return nil, fmt.Errorf("metrics3 receive %d: got %d messages", i, len(msgs))
		}
	}

	// Flush the alarm grid past the end of the run: one catch-up call
	// replays every elapsed period deterministically.
	cloud.Metrics.EvaluateAlarms(cloud.Clock.Now().Add(metrics3AlarmPeriod))

	// Everything below comes from the metrics service only.
	mon := cloud.Metrics
	var zero time.Time
	out := &Metrics3{
		Samples: cfg.Sends,
		MedBilled: time.Duration(
			mon.Percentile(d.FnName, metrics.MetricLambdaBilledMs, measureFrom, zero, 50) * float64(time.Millisecond)),
		MedRunMs:     mon.Percentile(d.FnName, metrics.MetricLambdaRunMs, measureFrom, zero, 50),
		PeakMemoryMB: int64(mon.Max(d.FnName, metrics.MetricLambdaPeakMB, measureFrom, zero)),
		ColdStarts:   int(mon.Sum(d.FnName, metrics.MetricLambdaCold, measureFrom, zero)),
		Invocations:  mon.Count("lambda/"+d.FnName, metrics.MetricPlaneRequests, measureFrom, zero),
		Rows:         mon.TopTable(zero, zero),
		SeriesCount:  mon.SeriesCount(),
		AlarmCount:   mon.AlarmCount(),

		Budget:            metrics3Budget,
		BudgetTransitions: budgetAlarm.Transitions(),
	}
	for _, u := range mon.Usage() {
		out.ObsList += cloud.Book.ListPrice(u)
	}
	obsMeter := pricing.NewMeter()
	for _, u := range mon.Usage() {
		obsMeter.Add(u)
	}
	out.ObsBilled = pricing.Compute(cloud.Book, obsMeter).
		TotalOf(pricing.CWMetricMonths, pricing.CWAlarmMonths)
	return out, nil
}

// Render prints the re-derived table, the per-op dashboard, and the
// observability bill.
func (m *Metrics3) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3 re-derived from the monitoring service alone (CloudWatch-sim)\n")
	fmt.Fprintf(&sb, "  %-38s %10v\n", "Med. Lambda Time Billed", m.MedBilled.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %7.0f ms\n", "Med. Lambda Time Run", m.MedRunMs)
	fmt.Fprintf(&sb, "  %-38s %7d MB\n", "Peak Memory Used", m.PeakMemoryMB)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(samples)", m.Samples)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(cold starts in window)", m.ColdStarts)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(lambda plane requests in window)", m.Invocations)

	sb.WriteString("\nper-op RED+cost, whole run (plane interceptor series):\n")
	fmt.Fprintf(&sb, "  %-34s %7s %6s %6s %9s %9s %14s\n",
		"SERIES", "REQS", "ERR", "DENY", "P50", "P99", "AVG $/REQ")
	for _, r := range m.Rows {
		fmt.Fprintf(&sb, "  %-34s %7.0f %6.0f %6.0f %7.1fms %7.1fms %14s\n",
			r.Namespace, r.Requests, r.Errors, r.Denials, r.P50Ms, r.P99Ms,
			nanodollarsPerReq(r.CostNanos, r.Requests))
	}

	fmt.Fprintf(&sb, "\nobservability itself: %d series + %d alarm(s) -> %s/mo list, %s/mo after the 10/10 free tier\n",
		m.SeriesCount, m.AlarmCount, dollars6(m.ObsList), dollars6(m.ObsBilled))

	fmt.Fprintf(&sb, "\nbudget alarm (%s/mo threshold) transitions:\n", dollars6(m.Budget))
	if len(m.BudgetTransitions) == 0 {
		sb.WriteString("  (none)\n")
	}
	for _, tr := range m.BudgetTransitions {
		fmt.Fprintf(&sb, "  %s\n", tr)
	}
	return sb.String()
}

// nanodollarsPerReq renders a mean per-request cost from a summed
// nanodollar series, at full nanodollar precision (these are far below
// a cent).
func nanodollarsPerReq(costNanos, reqs float64) string {
	if reqs == 0 {
		return "-"
	}
	return fmt.Sprintf("$%.9f", costNanos/reqs/1e9)
}

// dollars6 renders a Money at micro-dollar precision (Money.String
// rounds to cents, useless for sub-cent observability prices).
func dollars6(m pricing.Money) string {
	return fmt.Sprintf("$%.6f", m.Dollars())
}
