package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/trace"
	"repro/internal/core"
	"repro/internal/pricing"
)

// Trace3 re-derives Table 3's billed-time numbers from distributed
// traces instead of aggregate CloudWatch-style statistics. Each chat
// send carries a trace whose lambda span is annotated with its run and
// billed time and whose hop spans carry the usage they were metered
// for, so the same medians fall out of the trace store — plus the
// per-service latency breakdown and per-request dollar attribution
// that aggregates cannot provide.
type Trace3 struct {
	Samples    int
	ColdStarts int

	// Billed/run medians from the trace annotations, against the same
	// medians from the monitoring service. Equal by construction: both
	// observe the identical invocations.
	MedBilledTraces  time.Duration
	MedBilledMetrics time.Duration
	MedRunTraces     time.Duration
	MedRunMetrics    time.Duration

	// Where the time goes inside the function: median per-trace total
	// span time for each downstream service.
	Breakdown []ServiceShare

	// MedCostPerSend is the median list-price cost of one send's whole
	// trace (request fee + GB-seconds + KMS + S3 + SQS).
	MedCostPerSend pricing.Money

	// Example is the rendered flame tree of the first traced send.
	Example string
}

// ServiceShare is one service's contribution to a traced request.
type ServiceShare struct {
	Service  string
	Calls    int           // median calls per trace
	MedTotal time.Duration // median per-trace total span time
}

// RunTrace3 deploys the chat prototype, sends traced messages between
// two members, and derives the Table 3 numbers from the trace store.
func RunTrace3(sends int, seed int64) (*Trace3, error) {
	if sends <= 0 {
		sends = 200
	}
	opts := core.CloudOptions{Name: "trace3"}
	if seed != 0 {
		params := netsim.DefaultParams()
		params.Seed = seed
		opts.NetParams = &params
	}
	cloud, err := core.NewCloud(opts)
	if err != nil {
		return nil, err
	}
	d, err := chat.Install(cloud, "proto", chat.App{
		Members:  []string{"alice", "bob"},
		MemoryMB: 448,
	})
	if err != nil {
		return nil, err
	}
	alice := chat.NewClient(d, "alice", "laptop")
	bob := chat.NewClient(d, "bob", "phone")
	if _, err := alice.Session(); err != nil {
		return nil, err
	}
	if _, err := bob.Session(); err != nil {
		return nil, err
	}

	var billed, run []time.Duration
	var costs []pricing.Money
	perService := make(map[string][]time.Duration)
	perServiceCalls := make(map[string][]int)
	cold := 0
	var example string
	var measureFrom time.Time
	for i := 0; i < sends; i++ {
		cloud.Clock.Advance(40 * time.Second)
		if i == 0 {
			// Window start for the metrics comparison: after the
			// session-initiation invocations, before the first send.
			measureFrom = cloud.Clock.Now()
		}
		tr, stats, err := alice.SendTraced(fmt.Sprintf("traced message %d", i))
		if err != nil {
			return nil, fmt.Errorf("trace3 send %d: %w", i, err)
		}
		lsp := tr.Find("lambda", d.FnName)
		if lsp == nil {
			return nil, fmt.Errorf("trace3 send %d: no lambda span", i)
		}
		b, err := annotatedMillis(lsp, "billed_ms")
		if err != nil {
			return nil, fmt.Errorf("trace3 send %d: %w", i, err)
		}
		r, err := annotatedMillis(lsp, "run_ms")
		if err != nil {
			return nil, fmt.Errorf("trace3 send %d: %w", i, err)
		}
		billed = append(billed, b)
		run = append(run, r)
		costs = append(costs, tr.Cost(cloud.Book))
		if stats.ColdStart {
			cold++
		}
		for _, svc := range []string{"kms", "s3", "sqs"} {
			var total time.Duration
			spans := tr.FindAll(svc)
			for _, s := range spans {
				total += s.Duration()
			}
			perService[svc] = append(perService[svc], total)
			perServiceCalls[svc] = append(perServiceCalls[svc], len(spans))
		}
		if i == 0 {
			example = tr.Render(cloud.Book)
		}
	}

	out := &Trace3{
		Samples:          sends,
		ColdStarts:       cold,
		MedBilledTraces:  nearestRankDur(billed, 50),
		MedBilledMetrics: time.Duration(cloud.Metrics.Percentile(d.FnName, metrics.MetricLambdaBilledMs, measureFrom, time.Time{}, 50) * float64(time.Millisecond)),
		MedRunTraces:     nearestRankDur(run, 50),
		MedRunMetrics:    time.Duration(cloud.Metrics.Percentile(d.FnName, metrics.MetricLambdaRunMs, measureFrom, time.Time{}, 50) * float64(time.Millisecond)),
		MedCostPerSend:   medianMoney(costs),
		Example:          example,
	}
	for _, svc := range []string{"kms", "s3", "sqs"} {
		calls := perServiceCalls[svc]
		sort.Ints(calls)
		out.Breakdown = append(out.Breakdown, ServiceShare{
			Service:  svc,
			Calls:    calls[(50*len(calls)+99)/100-1],
			MedTotal: nearestRankDur(perService[svc], 50),
		})
	}
	return out, nil
}

// Render prints the trace-derived Table 3 with the breakdown.
func (t *Trace3) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3 re-derived from distributed traces\n")
	fmt.Fprintf(&sb, "  %-38s %10v  (metrics: %v)\n", "Med. Lambda Time Billed",
		t.MedBilledTraces.Round(time.Millisecond), t.MedBilledMetrics.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10v  (metrics: %v)\n", "Med. Lambda Time Run",
		t.MedRunTraces.Round(time.Millisecond), t.MedRunMetrics.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10s\n", "Med. cost per send (list price)", fmt.Sprintf("$%.8f", t.MedCostPerSend.Dollars()))
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(samples)", t.Samples)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(cold starts)", t.ColdStarts)
	sb.WriteString("  where the run time goes (median per send):\n")
	for _, s := range t.Breakdown {
		fmt.Fprintf(&sb, "    %-8s %2d call(s) %10v\n", s.Service, s.Calls, s.MedTotal.Round(time.Millisecond))
	}
	sb.WriteString("  example trace (first send):\n")
	for _, line := range strings.Split(strings.TrimRight(t.Example, "\n"), "\n") {
		sb.WriteString("    " + line + "\n")
	}
	return sb.String()
}

// annotatedMillis reads a millisecond annotation from a span.
func annotatedMillis(s *trace.Span, key string) (time.Duration, error) {
	v, ok := s.Annotation(key)
	if !ok {
		return 0, fmt.Errorf("span %s %s: no %s annotation", s.Service(), s.Op(), key)
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("span %s %s: bad %s: %w", s.Service(), s.Op(), key, err)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// nearestRankDur is the nearest-rank percentile (the metrics service's
// definition, so trace- and metrics-derived medians agree exactly).
func nearestRankDur(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	rank := (p*len(cp) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(cp) {
		rank = len(cp)
	}
	return cp[rank-1]
}

func medianMoney(samples []pricing.Money) pricing.Money {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]pricing.Money(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	rank := (50*len(cp) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}
