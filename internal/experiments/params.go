// Package experiments regenerates every table and figure in the
// paper's evaluation (§5 Table 1, §6.1 Table 2, §6.2 Table 3, the
// Figure 1 request-flow trace) plus the ablations DESIGN.md calls out,
// all through the simulated substrates and the pricing engine — no
// cost number is hardcoded.
package experiments

import (
	"time"

	"repro/internal/pricing"
)

// Profile is one Table 2 service row's workload parameters. The first
// five columns are printed verbatim in the paper; the transfer volume
// is not published, so it is derived from the paper's storage+transfer
// totals at 2017 list prices and documented in EXPERIMENTS.md.
type Profile struct {
	Application string
	Provider    string // "Lambda" or "EC2"
	// DailyRequests is the Table 2 "Daily Requests" column.
	DailyRequests float64
	// ComputePerRequest is the Table 2 "Compute Time per Request".
	ComputePerRequest time.Duration
	// LambdaMemMB is the Table 2 "Lambda Mem. (MB)" column (0 for EC2).
	LambdaMemMB int
	// StorageGB is the Table 2 "Monthly Storage (GB)" column.
	StorageGB float64
	// TransferGBMonth is the derived monthly internet-egress volume
	// (before the 1 GB/month free allowance).
	TransferGBMonth float64
	// EC2InstanceType and EC2HoursMonth size the EC2-hosted service
	// (video only).
	EC2InstanceType string
	EC2HoursMonth   float64
}

// Table2Profiles returns the five Table 2 service rows.
func Table2Profiles() []Profile {
	return []Profile{
		{
			Application: "Group Chat", Provider: "Lambda",
			DailyRequests: 2000, ComputePerRequest: 500 * time.Millisecond,
			LambdaMemMB: 128, StorageGB: 2, TransferGBMonth: 2.0,
		},
		{
			Application: "Email", Provider: "Lambda",
			DailyRequests: 500, ComputePerRequest: 500 * time.Millisecond,
			LambdaMemMB: 128, StorageGB: 5, TransferGBMonth: 2.6,
		},
		{
			Application: "File Transfer", Provider: "Lambda",
			DailyRequests: 100, ComputePerRequest: 2000 * time.Millisecond,
			LambdaMemMB: 1024, StorageGB: 2, TransferGBMonth: 2.0,
		},
		{
			Application: "IoT Controller", Provider: "Lambda",
			DailyRequests: 100, ComputePerRequest: 500 * time.Millisecond,
			LambdaMemMB: 128, StorageGB: 1, TransferGBMonth: 2.1,
		},
		{
			Application: "Video Conferencing", Provider: "EC2",
			DailyRequests: 1, ComputePerRequest: 15 * time.Minute,
			StorageGB: 1, TransferGBMonth: 10.0,
			// The paper's compute cell ($0.01) prices a single
			// 15-minute t2.medium call; see EXPERIMENTS.md for the
			// discrepancy discussion.
			EC2InstanceType: "t2.medium", EC2HoursMonth: 0.25,
		},
	}
}

// Strawman is the Table 1 EC2-hosted email server configuration: the
// smallest VM running the whole month, ~7.4 GB of storage (mail plus
// system image — the volume that makes the paper's $0.17 storage row
// at the 2017 S3 rate), 2 GB of monthly transfer.
type Strawman struct {
	InstanceType string
	StorageGB    float64
	TransferGB   float64
}

// Table1Strawman returns the §5 configuration.
func Table1Strawman() Strawman {
	return Strawman{InstanceType: "t2.nano", StorageGB: 7.4, TransferGB: 2.0}
}

// billedPerRequest quantizes a per-request compute duration to the
// platform's billing increment.
func billedPerRequest(d time.Duration) time.Duration {
	q := pricing.BillingQuantum
	if d <= 0 {
		return q
	}
	return (d + q - 1) / q * q
}

// MonthlyGBSeconds reports the month's GB-seconds for a profile.
func (p Profile) MonthlyGBSeconds() float64 {
	billed := billedPerRequest(p.ComputePerRequest)
	return p.DailyRequests * 30 * billed.Seconds() * float64(p.LambdaMemMB) / 1024
}

// MonthlyRequests reports the month's request count.
func (p Profile) MonthlyRequests() float64 { return p.DailyRequests * 30 }
