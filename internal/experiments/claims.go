package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/video"
	"repro/internal/pricing"
)

// Claims holds the paper's headline quantitative claims, recomputed.
type Claims struct {
	DIYEmailMonthly      pricing.Money
	EC2EmailMonthly      pricing.Money
	EC2EmailHAMonthly    pricing.Money
	SavingsVsSingleEC2   float64
	SavingsVsHAEC2       float64
	HourLongHDCall       pricing.Money
	EmailFreeCrossover   float64 // requests/day where compute stops being free
	ChatFreeAt2000PerDay bool
	// ChatPrototypeFreeCrossover is the §6.2 claim "Users can send
	// over 25,000 messages per day without incurring any compute
	// cost": the prototype's crossover at its measured 200 ms billed /
	// 448 MB operating point.
	ChatPrototypeFreeCrossover float64
}

// RunClaims recomputes the §1/§5/§6 headline numbers.
func RunClaims() (*Claims, error) {
	t1, err := RunTable1()
	if err != nil {
		return nil, err
	}
	var email, chatRow Table2Row
	for _, r := range RunTable2() {
		switch r.Profile.Application {
		case "Email":
			email = r
		case "Group Chat":
			chatRow = r
		}
	}
	prototype := Profile{
		Application: "Chat prototype", Provider: "Lambda",
		ComputePerRequest: 200 * time.Millisecond, LambdaMemMB: 448,
	}
	c := &Claims{
		DIYEmailMonthly:            email.Total,
		EC2EmailMonthly:            t1.Total,
		EC2EmailHAMonthly:          t1.ReplicatedTotal,
		HourLongHDCall:             video.CostOfCall(pricing.Default2017(), video.DefaultInstanceType, time.Hour, video.HDCallBandwidthMbps),
		EmailFreeCrossover:         FreeTierCrossoverPerDay(emailProfile()),
		ChatFreeAt2000PerDay:       chatRow.ComputeCost == 0,
		ChatPrototypeFreeCrossover: FreeTierCrossoverPerDay(prototype),
	}
	c.SavingsVsSingleEC2 = c.EC2EmailMonthly.Dollars() / c.DIYEmailMonthly.Dollars()
	c.SavingsVsHAEC2 = c.EC2EmailHAMonthly.Dollars() / c.DIYEmailMonthly.Dollars()
	return c, nil
}

func emailProfile() Profile {
	for _, p := range Table2Profiles() {
		if p.Application == "Email" {
			return p
		}
	}
	return Profile{}
}

// FreeTierCrossoverPerDay reports the daily request rate at which a
// Lambda profile's compute cost first exceeds zero: the tighter of the
// request free tier and the GB-seconds free tier. The paper's email
// claim: "The compute cost for DIY email remains free until roughly
// 33,000 emails are sent or received daily."
func FreeTierCrossoverPerDay(p Profile) float64 {
	book := pricing.Default2017()
	byRequests := book.LambdaFreeRequests / 30
	perReqGBs := billedPerRequest(p.ComputePerRequest).Seconds() * float64(p.LambdaMemMB) / 1024
	byGBs := byRequests
	if perReqGBs > 0 {
		byGBs = book.LambdaFreeGBSeconds / perReqGBs / 30
	}
	if byGBs < byRequests {
		return byGBs
	}
	return byRequests
}

// Render prints the claims with the paper's stated values alongside.
func (c *Claims) Render() string {
	var sb strings.Builder
	sb.WriteString("Headline claims (recomputed vs paper)\n")
	fmt.Fprintf(&sb, "  %-44s %10s   (paper: $0.26)\n", "DIY email, monthly:", c.DIYEmailMonthly)
	fmt.Fprintf(&sb, "  %-44s %10s   (paper: $4.58)\n", "EC2 email, monthly, 1 region:", c.EC2EmailMonthly)
	fmt.Fprintf(&sb, "  %-44s %10s   (paper: ~2x Table 1)\n", "EC2 email, monthly, 2-region HA:", c.EC2EmailHAMonthly)
	fmt.Fprintf(&sb, "  %-44s %9.1fx  (paper abstract: 50x)\n", "DIY saving vs single EC2:", c.SavingsVsSingleEC2)
	fmt.Fprintf(&sb, "  %-44s %9.1fx\n", "DIY saving vs HA EC2:", c.SavingsVsHAEC2)
	fmt.Fprintf(&sb, "  %-44s %10s   (paper: $0.11)\n", "Hour-long HD call:", c.HourLongHDCall)
	fmt.Fprintf(&sb, "  %-44s %8.0f/d  (paper: ~33,000/day)\n", "Email compute-free crossover:", c.EmailFreeCrossover)
	fmt.Fprintf(&sb, "  %-44s %10v   (paper: free)\n", "Chat compute free at 2000 msg/day:", c.ChatFreeAt2000PerDay)
	fmt.Fprintf(&sb, "  %-44s %8.0f/d  (paper: >25,000/day free)\n", "Chat prototype compute-free crossover:", c.ChatPrototypeFreeCrossover)
	return sb.String()
}
