package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

// StreamingPoint is one hosting mode in the §8.3 comparison: how much
// compute a one-hour interactive session bills under each model.
type StreamingPoint struct {
	Mode string
	// BilledCompute is the billed container-attached time.
	BilledCompute time.Duration
	// GBSeconds and Cost price the session's compute without free-tier
	// credit (memory 128 MB).
	GBSeconds float64
	Cost      pricing.Money
	// MedLatency is the median per-message service latency.
	MedLatency time.Duration
}

// RunStreamingComparison models a one-hour interactive session with
// the given number of uniformly spaced messages (default 6 — sparse
// enough that gaps exceed the 5-minute warm pool, the regime §8.3
// cares about) under three hosting modes:
//
//   - "per-request": today's serverless model — each message is an
//     independent invocation (dispatch + possible cold start);
//   - "open-connection": a TCP connection held by an always-attached
//     container ("the function is billed while the ... request is
//     active"), the behaviour §8.3 complains about;
//   - "suspend/resume": the Picocenter-style extension — the container
//     swaps out between messages, billing only active slivers.
func RunStreamingComparison(messages int) ([]StreamingPoint, error) {
	if messages <= 0 {
		messages = 6
	}
	const memMB = 128
	session := time.Hour
	gap := session / time.Duration(messages)
	book := pricing.Default2017()

	handler := func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		env.Compute(20 * time.Millisecond)
		return lambda.Response{Status: 200}, nil
	}

	newPlatform := func() (*lambda.Platform, *pricing.Meter) {
		meter := pricing.NewMeter()
		p := lambda.New(meter, netsim.NewDefaultModel(), clock.NewVirtual())
		if err := p.RegisterFunction(lambda.Function{Name: "fn", MemoryMB: memMB, Handler: handler}); err != nil {
			panic(err)
		}
		return p, meter
	}

	price := func(meter *pricing.Meter) (float64, pricing.Money) {
		gbs := meter.Total(pricing.LambdaGBSeconds)
		reqs := meter.Total(pricing.LambdaRequests)
		cost := book.LambdaPerGBSecond.MulFloat(gbs) +
			book.LambdaPerMillionRequests.MulFloat(reqs/1e6)
		return gbs, cost
	}

	var out []StreamingPoint

	// Mode 1: per-request invocations.
	{
		p, meter := newPlatform()
		ctx := &sim.Context{Cursor: sim.NewCursor(clock.Epoch)}
		var billed time.Duration
		var lats []time.Duration
		for i := 0; i < messages; i++ {
			ctx.Cursor.Advance(gap)
			before := ctx.Cursor.Elapsed()
			_, stats, err := p.Invoke(ctx, "fn", lambda.Event{})
			if err != nil {
				return nil, err
			}
			billed += stats.BilledTime
			lats = append(lats, ctx.Cursor.Elapsed()-before)
		}
		gbs, cost := price(meter)
		out = append(out, StreamingPoint{
			Mode: "per-request", BilledCompute: billed,
			GBSeconds: gbs, Cost: cost, MedLatency: median(lats),
		})
	}

	// Mode 2: open connection, never suspended (suspend threshold
	// beyond the session length).
	{
		p, meter := newPlatform()
		ctx := &sim.Context{Cursor: sim.NewCursor(clock.Epoch)}
		conn, err := p.OpenConnection(ctx, "fn", 2*session)
		if err != nil {
			return nil, err
		}
		var lats []time.Duration
		for i := 0; i < messages; i++ {
			ctx.Cursor.Advance(gap)
			before := ctx.Cursor.Elapsed()
			if _, err := conn.Send(ctx, lambda.Event{}); err != nil {
				return nil, err
			}
			lats = append(lats, ctx.Cursor.Elapsed()-before)
		}
		stats, err := conn.Close(ctx.Cursor.Now())
		if err != nil {
			return nil, err
		}
		gbs, cost := price(meter)
		out = append(out, StreamingPoint{
			Mode: "open-connection", BilledCompute: stats.BilledActive,
			GBSeconds: gbs, Cost: cost, MedLatency: median(lats),
		})
	}

	// Mode 3: the suspend/resume extension.
	{
		p, meter := newPlatform()
		ctx := &sim.Context{Cursor: sim.NewCursor(clock.Epoch)}
		conn, err := p.OpenConnection(ctx, "fn", lambda.DefaultSuspendAfter)
		if err != nil {
			return nil, err
		}
		var lats []time.Duration
		for i := 0; i < messages; i++ {
			ctx.Cursor.Advance(gap)
			before := ctx.Cursor.Elapsed()
			if _, err := conn.Send(ctx, lambda.Event{}); err != nil {
				return nil, err
			}
			lats = append(lats, ctx.Cursor.Elapsed()-before)
		}
		stats, err := conn.Close(ctx.Cursor.Now())
		if err != nil {
			return nil, err
		}
		gbs, cost := price(meter)
		out = append(out, StreamingPoint{
			Mode: "suspend/resume", BilledCompute: stats.BilledActive,
			GBSeconds: gbs, Cost: cost, MedLatency: median(lats),
		})
	}
	return out, nil
}

// RenderStreaming prints the comparison.
func RenderStreaming(points []StreamingPoint) string {
	var sb strings.Builder
	sb.WriteString("Extension (§8.3): hosting a 1-hour interactive TCP session with sparse traffic\n")
	fmt.Fprintf(&sb, "  %-16s %14s %12s %12s %12s\n", "Mode", "BilledCompute", "GB-s", "Cost", "MedLatency")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %-16s %14v %12.2f %12s %12v\n",
			p.Mode, p.BilledCompute.Round(10*time.Millisecond), p.GBSeconds, p.Cost,
			p.MedLatency.Round(time.Millisecond))
	}
	return sb.String()
}
