package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// MemoryPoint is one row of the memory-latency ablation (§6.2: "Even
// though our function only uses 51MB of memory, allocating 448 MB gave
// significantly better latencies than a 128 MB function").
type MemoryPoint struct {
	MemoryMB    int
	MedRun      time.Duration
	MedBilled   time.Duration
	MedE2E      time.Duration
	CostPer100K pricing.Money
}

// RunMemorySweep measures the chat prototype across memory
// allocations.
func RunMemorySweep(sends int) ([]MemoryPoint, error) {
	if sends <= 0 {
		sends = 80
	}
	var out []MemoryPoint
	for _, mem := range []int{128, 192, 256, 448, 704, 960, 1216, 1536} {
		t3, err := RunTable3(Table3Config{Sends: sends, MemoryMB: mem})
		if err != nil {
			return nil, fmt.Errorf("memory sweep at %d MB: %w", mem, err)
		}
		out = append(out, MemoryPoint{
			MemoryMB:    mem,
			MedRun:      t3.MedRun,
			MedBilled:   t3.MedBilled,
			MedE2E:      t3.MedE2E,
			CostPer100K: t3.CostPer100K,
		})
	}
	return out, nil
}

// RenderMemorySweep prints the sweep.
func RenderMemorySweep(points []MemoryPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: function memory vs chat latency and cost (paper §6.2 observation)\n")
	fmt.Fprintf(&sb, "  %8s %12s %12s %12s %14s\n", "Mem(MB)", "MedRun", "MedBilled", "MedE2E", "Cost/100K")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %8d %12v %12v %12v %14s\n",
			p.MemoryMB, p.MedRun.Round(time.Millisecond), p.MedBilled,
			p.MedE2E.Round(time.Millisecond), p.CostPer100K)
	}
	return sb.String()
}

// CrossoverPoint is one row of the DIY-vs-EC2 cost sweep.
type CrossoverPoint struct {
	DailyRequests float64
	LambdaMonthly pricing.Money
	EC2Monthly    pricing.Money
	LambdaWins    bool
}

// RunDIYvsEC2Crossover sweeps the request rate for an email-shaped
// service and reports where pay-per-request stops being cheaper than
// an always-on t2.nano. Storage and transfer are identical on both
// sides, so only compute is compared.
func RunDIYvsEC2Crossover() []CrossoverPoint {
	book := pricing.Default2017()
	email := emailProfile()
	ec2Monthly := book.EC2Hourly("t2.nano").MulFloat(pricing.MonthHours)

	var out []CrossoverPoint
	for _, perDay := range []float64{100, 1_000, 10_000, 33_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000} {
		m := pricing.NewMeter()
		m.Add(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: perDay * 30})
		perReqGBs := billedPerRequest(email.ComputePerRequest).Seconds() * float64(email.LambdaMemMB) / 1024
		m.Add(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: perDay * 30 * perReqGBs})
		lambdaMonthly := pricing.Compute(book, m).Total()
		out = append(out, CrossoverPoint{
			DailyRequests: perDay,
			LambdaMonthly: lambdaMonthly,
			EC2Monthly:    ec2Monthly,
			LambdaWins:    lambdaMonthly < ec2Monthly,
		})
	}
	return out
}

// RenderCrossover prints the sweep.
func RenderCrossover(points []CrossoverPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: DIY (Lambda) vs always-on EC2 compute cost by request volume\n")
	fmt.Fprintf(&sb, "  %12s %14s %14s %10s\n", "Req/day", "Lambda/mo", "t2.nano/mo", "DIY wins")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %12.0f %14s %14s %10v\n",
			p.DailyRequests, p.LambdaMonthly, p.EC2Monthly, p.LambdaWins)
	}
	return sb.String()
}

// ColdStartPoint is one row of the cold-start ablation.
type ColdStartPoint struct {
	DailyRequests float64
	Invocations   int
	ColdStarts    int
	ColdFraction  float64
}

// RunColdStartAblation drives Poisson arrivals at several rates
// through a function with the default 5-minute warm pool and reports
// the cold-start fraction — why DIY's latency profile depends on
// traffic.
func RunColdStartAblation(days float64) ([]ColdStartPoint, error) {
	if days <= 0 {
		days = 2
	}
	var out []ColdStartPoint
	for _, perDay := range []float64{10, 50, 200, 500, 2000, 10000} {
		meter := pricing.NewMeter()
		model := netsim.NewDefaultModel()
		clk := clock.NewVirtual()
		platform := lambda.New(meter, model, clk)
		err := platform.RegisterFunction(lambda.Function{
			Name: "probe",
			Handler: func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
				env.Compute(50 * time.Millisecond)
				return lambda.Response{Status: 200}, nil
			},
		})
		if err != nil {
			return nil, err
		}
		arrivals := workload.NewPoisson(11, perDay, clock.Epoch).
			ArrivalsWithin(time.Duration(days * 24 * float64(time.Hour)))
		for _, at := range arrivals {
			ctx := &sim.Context{Cursor: sim.NewCursor(at)}
			if _, _, err := platform.Invoke(ctx, "probe", lambda.Event{}); err != nil {
				return nil, err
			}
		}
		inv, cold := platform.Stats("probe")
		p := ColdStartPoint{DailyRequests: perDay, Invocations: int(inv), ColdStarts: int(cold)}
		if inv > 0 {
			p.ColdFraction = float64(cold) / float64(inv)
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderColdStarts prints the ablation.
func RenderColdStarts(points []ColdStartPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: cold-start fraction vs request rate (5 min warm pool)\n")
	fmt.Fprintf(&sb, "  %12s %12s %12s %10s\n", "Req/day", "Invocations", "Cold", "Fraction")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %12.0f %12d %12d %9.1f%%\n",
			p.DailyRequests, p.Invocations, p.ColdStarts, 100*p.ColdFraction)
	}
	return sb.String()
}

// BackendPoint is one row of the state-backend comparison (the paper's
// footnote: "Amazon DynamoDB is a low-latency alternative to S3").
type BackendPoint struct {
	Backend   string
	MedRun    time.Duration
	MedBilled time.Duration
	MedE2E    time.Duration
}

// RunBackendComparison measures the chat prototype on both state
// backends.
func RunBackendComparison(sends int) ([]BackendPoint, error) {
	if sends <= 0 {
		sends = 100
	}
	var out []BackendPoint
	for _, backend := range []string{"s3", "dynamo"} {
		cfgBackend := backend
		if cfgBackend == "s3" {
			cfgBackend = ""
		}
		t3, err := RunTable3(Table3Config{Sends: sends, Backend: cfgBackend})
		if err != nil {
			return nil, fmt.Errorf("backend %s: %w", backend, err)
		}
		out = append(out, BackendPoint{
			Backend:   backend,
			MedRun:    t3.MedRun,
			MedBilled: t3.MedBilled,
			MedE2E:    t3.MedE2E,
		})
	}
	return out, nil
}

// RenderBackends prints the comparison.
func RenderBackends(points []BackendPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: chat state backend — S3 vs DynamoDB (paper footnote 1)\n")
	fmt.Fprintf(&sb, "  %10s %12s %12s %12s\n", "Backend", "MedRun", "MedBilled", "MedE2E")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %10s %12v %12v %12v\n",
			p.Backend, p.MedRun.Round(time.Millisecond), p.MedBilled, p.MedE2E.Round(time.Millisecond))
	}
	return sb.String()
}

// PollPoint is one row of the long-poll interval ablation.
type PollPoint struct {
	Interval       time.Duration
	PollsPerMonth  float64
	MonthlyCost    pricing.Money
	InsideFreeTier bool
}

// RunPollIntervalAblation examines the §6.2 claim: "Clients poll
// 876,000 times per month (assuming the maximum 20 second poll
// interval), which is well within the free tier." The count 876,000
// actually corresponds to a 3-second interval over a 730-hour month
// (730 x 3600 / 3); at the stated 20-second interval the count is only
// ~132,000 — even deeper inside the free tier, so the claim holds
// either way. Both rows appear in the sweep.
func RunPollIntervalAblation() []PollPoint {
	book := pricing.Default2017()
	var out []PollPoint
	for _, interval := range []time.Duration{
		time.Second, 3 * time.Second, 5 * time.Second, 10 * time.Second, 20 * time.Second,
	} {
		polls := pricing.Month.Seconds() / interval.Seconds()
		m := pricing.NewMeter()
		m.Add(pricing.Usage{Kind: pricing.SQSRequests, Quantity: polls})
		cost := pricing.Compute(book, m).Total()
		out = append(out, PollPoint{
			Interval:       interval,
			PollsPerMonth:  polls,
			MonthlyCost:    cost,
			InsideFreeTier: cost == 0,
		})
	}
	return out
}

// RenderPollInterval prints the ablation.
func RenderPollInterval(points []PollPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: SQS long-poll interval vs monthly polling cost\n")
	fmt.Fprintf(&sb, "  %10s %16s %12s %10s\n", "Interval", "Polls/month", "Cost", "Free tier")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %10v %16.0f %12s %10v\n",
			p.Interval, p.PollsPerMonth, p.MonthlyCost, p.InsideFreeTier)
	}
	return sb.String()
}
