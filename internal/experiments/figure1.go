package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/apps/iot"
	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
)

// Figure1Trace is the regenerated Figure 1: one DIY request traced
// through trigger → function → key manager → storage, with the
// privacy invariants checked at each hop. The paper's figure is an
// architecture diagram; the reproduction is an executable trace that
// asserts what the diagram claims.
type Figure1Trace struct {
	Steps []string
	// Checks are the verified invariants (all must be true).
	PlaintextOnlyInContainer bool
	KeyReleasedOnlyToRole    bool
	StorageHoldsCiphertext   bool
	TCBSize                  int
}

// RunFigure1 deploys a minimal app, issues one request carrying a
// secret, and verifies the trust boundaries of the DIY architecture.
func RunFigure1() (*Figure1Trace, error) {
	cloud, err := core.NewCloud(core.CloudOptions{Name: "figure1"})
	if err != nil {
		return nil, err
	}
	d, err := core.Install(cloud, "alice", iot.App{})
	if err != nil {
		return nil, err
	}
	tr := &Figure1Trace{}
	step := func(format string, args ...any) {
		tr.Steps = append(tr.Steps, fmt.Sprintf(format, args...))
	}

	secret := "living-room-camera"
	step("client: HTTPS request to %s (TLS-protected, op=register)", d.Endpoint)
	ctx := d.ClientContext()
	resp, stats, err := d.Invoke(ctx, "register", []byte(fmt.Sprintf(`{"name":%q,"kind":"video"}`, secret)))
	if err != nil || resp.Status != 200 {
		return nil, fmt.Errorf("figure1 request failed: %v (status %d)", err, resp.Status)
	}
	step("gateway: event trigger spawned function %s in %s (cold start: %v)", d.FnName, stats.Region, stats.ColdStart)
	step("function: obtained data key from KMS under role %s", d.Role)
	step("function: decrypted state, processed request, re-encrypted state")
	step("function: run %v, billed %v (%.4f GB-s)", stats.RunTime, stats.BilledTime, stats.GBSeconds)

	// Invariant 1: the key manager released the key only to the
	// deployment's role (audit log has no other allowed principals).
	tr.KeyReleasedOnlyToRole = true
	for _, entry := range cloud.KMS.Audit() {
		if entry.Allowed && entry.Principal != d.Role && entry.Principal != d.ClientRole {
			tr.KeyReleasedOnlyToRole = false
		}
	}
	step("kms: audit log shows %d entries, key released only to deployment roles: %v",
		len(cloud.KMS.Audit()), tr.KeyReleasedOnlyToRole)

	// Invariant 2: storage holds only ciphertext, with no plaintext
	// substring of the secret.
	tr.StorageHoldsCiphertext = true
	admin := &sim.Context{Principal: d.Role}
	keys, err := cloud.S3.List(admin, d.Bucket, "")
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		obj, err := cloud.S3.Get(admin, d.Bucket, k)
		if err != nil {
			return nil, err
		}
		if !envelope.IsSealed(obj.Data) || bytes.Contains(obj.Data, []byte(secret)) {
			tr.StorageHoldsCiphertext = false
		}
	}
	step("storage: %d object(s), all envelope ciphertext: %v", len(keys), tr.StorageHoldsCiphertext)

	// Invariant 3: plaintext existed only inside the container — the
	// response returned to the client is the only other plaintext
	// surface, and it travelled under TLS.
	tr.PlaintextOnlyInContainer = tr.StorageHoldsCiphertext
	tr.TCBSize = len(core.NewTCBReport().DIY)
	step("tcb: %d trusted components (container isolation, KMS, app code)", tr.TCBSize)
	return tr, nil
}

// OK reports whether every invariant held.
func (t *Figure1Trace) OK() bool {
	return t.PlaintextOnlyInContainer && t.KeyReleasedOnlyToRole && t.StorageHoldsCiphertext
}

// Render prints the trace.
func (t *Figure1Trace) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: DIY request flow (executable trace)\n")
	for i, s := range t.Steps {
		fmt.Fprintf(&sb, "  %d. %s\n", i+1, s)
	}
	fmt.Fprintf(&sb, "  invariants hold: %v\n", t.OK())
	return sb.String()
}
