package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// The acceptance gate for the log plane: Table 3 numbers reconstructed
// purely from Lambda REPORT log lines must equal the ones measured
// directly from InvocationStats (the pinned table3 golden).
func TestLogs3MatchesTable3(t *testing.T) {
	l3, err := RunLogs3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := RunTable3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	if l3.MedBilled != t3.MedBilled {
		t.Errorf("logs-derived MedBilled = %v, stats-derived = %v", l3.MedBilled, t3.MedBilled)
	}
	if l3.MedBilled != 200*time.Millisecond {
		t.Errorf("MedBilled = %v, want the paper's 200ms", l3.MedBilled)
	}
	if l3.PeakMemoryMB != t3.PeakMemoryMB {
		t.Errorf("logs-derived peak = %d MB, stats-derived = %d MB", l3.PeakMemoryMB, t3.PeakMemoryMB)
	}
	if l3.ColdStarts != t3.ColdStarts {
		t.Errorf("logs-derived cold starts = %d, stats-derived = %d", l3.ColdStarts, t3.ColdStarts)
	}
	if l3.MedRunMs < 120 || l3.MedRunMs > 150 {
		t.Errorf("logs-derived median run = %v ms, want the paper's ≈134ms band", l3.MedRunMs)
	}
	if l3.Invocations != l3.Samples {
		t.Errorf("REPORT lines in window = %d, want one per send (%d)", l3.Invocations, l3.Samples)
	}
	if !strings.HasPrefix(l3.SampleReport, "REPORT RequestId: ") ||
		!strings.Contains(l3.SampleReport, "Billed Duration: ") ||
		!strings.Contains(l3.SampleReport, "Memory Size: 448 MB") {
		t.Errorf("sample REPORT line malformed: %q", l3.SampleReport)
	}
	if l3.IngestedBytes <= 0 || l3.LogsList <= 0 {
		t.Errorf("log plane metered nothing: ingested=%d list=%v", l3.IngestedBytes, l3.LogsList)
	}
	if len(l3.Groups) == 0 {
		t.Fatal("no log groups after the run")
	}
}

// The parity proof the tentpole rides on: installing the log
// interceptor and service sinks must not move a single duration or
// nanodollar in the Table 3 run.
func TestLogsPreserveLedger(t *testing.T) {
	on, err := RunTable3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunTable3(Table3Config{DisableLogging: true})
	if err != nil {
		t.Fatal(err)
	}
	if *on != *off {
		t.Errorf("logging changed the measured run:\n  on:  %+v\n  off: %+v", on, off)
	}
}

func TestLedgerParityLogs3(t *testing.T) {
	l3, err := RunLogs3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(l3.Render())
	// Raw fingerprint below the rendered table, like the other parity
	// goldens: every derived number at full precision.
	fmt.Fprintf(&sb, "raw: billed=%dns runms=%v peak=%dMB cold=%d reports=%d groups=%d ingested=%d stored=%d logslist=%dnd logsbilled=%dnd\n",
		int64(l3.MedBilled), l3.MedRunMs, l3.PeakMemoryMB, l3.ColdStarts, l3.Invocations,
		len(l3.Groups), l3.IngestedBytes, l3.StoredBytes, int64(l3.LogsList), int64(l3.LogsBilled))
	checkGolden(t, "ledger_logs3.golden", sb.String())
}

// TestLogStreamsDeterministic emits the full event dump of a seeded
// run as t.Log lines; scripts/check.sh runs it twice and diffs the
// output, proving two identically-seeded runs produce byte-identical
// log streams.
func TestLogStreamsDeterministic(t *testing.T) {
	l3, err := RunLogs3(Table3Config{Sends: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(l3.DumpLines) == 0 {
		t.Fatal("empty log dump")
	}
	for _, line := range l3.DumpLines {
		t.Logf("logline: %s", line)
	}
}
