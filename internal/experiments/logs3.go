package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/logs"
	"repro/internal/cloudsim/netsim"
	"repro/internal/core"
	"repro/internal/pricing"
)

// Logs3 re-derives Table 3 purely from CloudWatch Logs — no access to
// InvocationStats, traces, or metrics series, only the REPORT lines
// the lambda platform writes into the log plane as the workload runs,
// read back through Insights-style queries. On real AWS these lines
// are the primary operator-facing evidence of per-invoke billing, so
// this closes the loop from the other direction than RunMetrics3: the
// paper's numbers fall out of the raw log text alone.
type Logs3 struct {
	Samples int

	// The Table 3 headline stats, parsed out of REPORT lines over the
	// measurement window (sends only, like Table 3).
	MedBilled    time.Duration
	MedRunMs     float64 // p50 of the REPORT "Duration" field
	PeakMemoryMB int64   // max of the REPORT "Max Memory Used" field
	// ColdStarts counts REPORT lines carrying an "Init Duration"
	// segment — the platform's cold-start marker.
	ColdStarts int
	// Invocations counts REPORT lines in the window — one per send.
	Invocations int

	// SampleReport is the window's last REPORT line verbatim, the
	// artifact an operator would actually read.
	SampleReport string

	// Queries lists the Insights pipelines the stats above came from.
	Queries []string

	// The log plane's inventory after the run, and what ingesting and
	// storing it costs at CloudWatch Logs' 2017 prices.
	Groups        []logs.GroupInfo
	IngestedBytes int64
	StoredBytes   int64
	LogsList      pricing.Money
	LogsBilled    pricing.Money

	// DumpLines is the full deterministic event dump; scripts/check.sh
	// diffs it across two identically-seeded runs (not rendered).
	DumpLines []string
}

// Insights pipelines over the function's log group; REPORT lines carry
// every Table 3 quantity.
const (
	logs3QueryBilled = `filter @message like "REPORT RequestId" | parse @message "Billed Duration: * ms" as billed_ms | stats count(*) as n, pct(billed_ms, 50) as med_billed_ms`
	logs3QueryRun    = `filter @message like "REPORT RequestId" | parse @message "Duration: * ms" as run_ms | stats pct(run_ms, 50) as med_run_ms`
	logs3QueryPeak   = `filter @message like "REPORT RequestId" | parse @message "Max Memory Used: * MB" as peak_mb | stats max(peak_mb) as peak_mb`
	logs3QueryCold   = `filter @message like "Init Duration" | stats count(*) as cold_starts`
	logs3QuerySample = `filter @message like "REPORT RequestId" | sort @timestamp desc | limit 1 | fields @message`
)

// RunLogs3 drives the exact Table 3 workload, then reconstructs the
// table from the log plane alone.
func RunLogs3(cfg Table3Config) (*Logs3, error) {
	if cfg.Sends <= 0 {
		cfg.Sends = 200
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 448
	}
	if cfg.GapBetweenSends <= 0 {
		cfg.GapBetweenSends = 40 * time.Second
	}

	opts := core.CloudOptions{Name: "logs3"}
	if cfg.Seed != 0 {
		params := netsim.DefaultParams()
		params.Seed = cfg.Seed
		opts.NetParams = &params
	}
	cloud, err := core.NewCloud(opts)
	if err != nil {
		return nil, err
	}

	// The workload is RunTable3's, call for call, so the latency
	// model's random stream — and therefore every logged line —
	// matches the pinned Table 3 goldens.
	d, err := chat.Install(cloud, "proto", chat.App{
		Members:  []string{"alice", "bob"},
		MemoryMB: cfg.MemoryMB,
		Backend:  cfg.Backend,
	})
	if err != nil {
		return nil, err
	}
	alice := chat.NewClient(d, "alice", "laptop")
	bob := chat.NewClient(d, "bob", "phone")
	if _, err := alice.Session(); err != nil {
		return nil, err
	}
	if _, err := bob.Session(); err != nil {
		return nil, err
	}

	var measureFrom time.Time
	for i := 0; i < cfg.Sends; i++ {
		cloud.Clock.Advance(cfg.GapBetweenSends)
		if i == 0 {
			// Measurement window opens after the session-initiation
			// invocations, before the first send — Table 3 measures
			// sends only.
			measureFrom = cloud.Clock.Now()
		}
		sendStart := cloud.Clock.Now()
		if _, _, err := alice.SendTimed(fmt.Sprintf("message %d from the prototype run", i)); err != nil {
			return nil, fmt.Errorf("logs3 send %d: %w", i, err)
		}
		pollCtx := bob.PollContext(sendStart)
		msgs, err := bob.Receive(pollCtx, 20*time.Second)
		if err != nil {
			return nil, fmt.Errorf("logs3 receive %d: %w", i, err)
		}
		if len(msgs) != 1 {
			return nil, fmt.Errorf("logs3 receive %d: got %d messages", i, len(msgs))
		}
	}

	// Everything below comes from the log service only.
	var zero time.Time
	q := func(query, column string) (string, error) {
		res, err := cloud.Logs.Query(logs.LambdaGroup(d.FnName), query, measureFrom, zero)
		if err != nil {
			return "", fmt.Errorf("logs3 query %q: %w", query, err)
		}
		return res.Value(0, column), nil
	}
	num := func(query, column string) (float64, error) {
		s, err := q(query, column)
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("logs3 query %q: column %s = %q: %w", query, column, s, err)
		}
		return v, nil
	}

	out := &Logs3{
		Samples: cfg.Sends,
		Queries: []string{logs3QueryBilled, logs3QueryRun, logs3QueryPeak, logs3QueryCold},
	}
	billedMs, err := num(logs3QueryBilled, "med_billed_ms")
	if err != nil {
		return nil, err
	}
	out.MedBilled = time.Duration(billedMs * float64(time.Millisecond))
	n, err := num(logs3QueryBilled, "n")
	if err != nil {
		return nil, err
	}
	out.Invocations = int(n)
	if out.MedRunMs, err = num(logs3QueryRun, "med_run_ms"); err != nil {
		return nil, err
	}
	peak, err := num(logs3QueryPeak, "peak_mb")
	if err != nil {
		return nil, err
	}
	out.PeakMemoryMB = int64(peak)
	coldStr, err := q(logs3QueryCold, "cold_starts")
	if err != nil {
		return nil, err
	}
	if out.ColdStarts, err = strconv.Atoi(coldStr); err != nil {
		return nil, fmt.Errorf("logs3 cold starts %q: %w", coldStr, err)
	}
	if out.SampleReport, err = q(logs3QuerySample, "@message"); err != nil {
		return nil, err
	}

	// The log plane's own bill, through the standard engine.
	out.Groups = cloud.Logs.Inventory()
	out.IngestedBytes = cloud.Logs.IngestedBytes()
	out.StoredBytes = cloud.Logs.StoredBytes()
	logMeter := pricing.NewMeter()
	for _, u := range cloud.Logs.Usage() {
		out.LogsList += cloud.Book.ListPrice(u)
		logMeter.Add(u)
	}
	out.LogsBilled = pricing.Compute(cloud.Book, logMeter).
		TotalOf(pricing.CWLogsIngestGB, pricing.CWLogsStorageGBMo)

	out.DumpLines = cloud.Logs.Dump()
	return out, nil
}

// Render prints the re-derived table, the group inventory, and the log
// plane's bill.
func (l *Logs3) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3 re-derived from Lambda REPORT log lines alone (CloudWatch Logs-sim)\n")
	fmt.Fprintf(&sb, "  %-38s %10v\n", "Med. Lambda Time Billed", l.MedBilled.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %7.0f ms\n", "Med. Lambda Time Run", l.MedRunMs)
	fmt.Fprintf(&sb, "  %-38s %7d MB\n", "Peak Memory Used", l.PeakMemoryMB)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(samples)", l.Samples)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(cold starts in window)", l.ColdStarts)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(REPORT lines in window)", l.Invocations)

	sb.WriteString("\nthe operator's evidence, verbatim (window's last REPORT line):\n")
	fmt.Fprintf(&sb, "  %s\n", strings.ReplaceAll(l.SampleReport, "\t", "  "))

	sb.WriteString("\nInsights queries used:\n")
	for _, q := range l.Queries {
		fmt.Fprintf(&sb, "  %s\n", q)
	}

	sb.WriteString("\nlog groups after the run:\n")
	fmt.Fprintf(&sb, "  %-24s %8s %8s %10s\n", "GROUP", "STREAMS", "EVENTS", "BYTES")
	for _, g := range l.Groups {
		fmt.Fprintf(&sb, "  %-24s %8d %8d %10d\n", g.Name, g.Streams, g.Events, g.Bytes)
	}

	fmt.Fprintf(&sb, "\ncloudwatch logs: %d bytes ingested, %d stored -> %s/mo list, %s/mo after the 5 GB/5 GB free tier\n",
		l.IngestedBytes, l.StoredBytes, dollars6(l.LogsList), dollars6(l.LogsBilled))
	return sb.String()
}
