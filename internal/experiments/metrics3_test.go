package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/metrics"
)

// The acceptance gate for the observability layer: Table 3 numbers
// reconstructed purely from auto-published series must equal the ones
// measured directly from InvocationStats (the pinned table3 golden).
func TestMetrics3MatchesTable3(t *testing.T) {
	m3, err := RunMetrics3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := RunTable3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.MedBilled != t3.MedBilled {
		t.Errorf("metrics-derived MedBilled = %v, stats-derived = %v", m3.MedBilled, t3.MedBilled)
	}
	if m3.MedBilled != 200*time.Millisecond {
		t.Errorf("MedBilled = %v, want the paper's 200ms", m3.MedBilled)
	}
	if m3.PeakMemoryMB != t3.PeakMemoryMB {
		t.Errorf("metrics-derived peak = %d MB, stats-derived = %d MB", m3.PeakMemoryMB, t3.PeakMemoryMB)
	}
	if m3.ColdStarts != t3.ColdStarts {
		t.Errorf("metrics-derived cold starts = %d, stats-derived = %d", m3.ColdStarts, t3.ColdStarts)
	}
	if m3.MedRunMs < 120 || m3.MedRunMs > 150 {
		t.Errorf("metrics-derived median run = %v ms, want the paper's ≈134ms band", m3.MedRunMs)
	}
	if m3.Invocations != m3.Samples {
		t.Errorf("lambda plane requests in window = %d, want one per send (%d)", m3.Invocations, m3.Samples)
	}
	if len(m3.Rows) == 0 {
		t.Fatal("no per-op RED rows published")
	}
	// The budget alarm must have gone INSUFFICIENT_DATA -> OK -> ALARM
	// on the default run's spend.
	states := []metrics.AlarmState{metrics.StateInsufficient}
	for _, tr := range m3.BudgetTransitions {
		if tr.From != states[len(states)-1] {
			t.Errorf("transition %v does not chain from %v", tr, states[len(states)-1])
		}
		states = append(states, tr.To)
	}
	if states[len(states)-1] != metrics.StateAlarm {
		t.Errorf("budget alarm ended %v, want ALARM (spend crosses the demo budget)", states[len(states)-1])
	}
}

// The parity proof the tentpole rides on: installing the metrics
// interceptor must not move a single duration or nanodollar in the
// Table 3 run.
func TestObservabilityPreservesLedger(t *testing.T) {
	on, err := RunTable3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunTable3(Table3Config{DisableObservability: true})
	if err != nil {
		t.Fatal(err)
	}
	if *on != *off {
		t.Errorf("observability changed the measured run:\n  on:  %+v\n  off: %+v", on, off)
	}
}

func TestLedgerParityMetrics3(t *testing.T) {
	m3, err := RunMetrics3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(m3.Render())
	// Raw fingerprint below the rendered table, like the other parity
	// goldens: every derived number at full precision.
	fmt.Fprintf(&sb, "raw: billed=%dns runms=%v peak=%dMB cold=%d invocations=%d series=%d alarms=%d obslist=%dnd obsbilled=%dnd transitions=%d\n",
		int64(m3.MedBilled), m3.MedRunMs, m3.PeakMemoryMB, m3.ColdStarts, m3.Invocations,
		m3.SeriesCount, m3.AlarmCount, int64(m3.ObsList), int64(m3.ObsBilled), len(m3.BudgetTransitions))
	checkGolden(t, "ledger_metrics3.golden", sb.String())
}
