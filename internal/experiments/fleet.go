package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/workload"
)

// FleetReport is the fleet-scale experiment: the paper's "what if a
// meaningful fraction of users ran their own deployment?" premise made
// measurable. It extends Figure 1's single-request story to a
// population — per-account cost percentiles at the fleet tail,
// fleet-wide request latency, and the cold-start fraction as a
// function of inter-request gap, whose knee at the warm-container TTL
// is the serverless-economics argument in one curve.
type FleetReport struct {
	Result *fleet.Result
}

// RunFleet executes a fleet with the given config and wraps the result
// for rendering.
func RunFleet(cfg fleet.Config) (*FleetReport, error) {
	res, err := fleet.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &FleetReport{Result: res}, nil
}

// Render prints the fleet summary. Everything rendered is part of the
// determinism contract — bit-identical across replays at any worker
// count — so check.sh can diff two renders directly. Worker count is
// deliberately absent.
func (r *FleetReport) Render() string {
	res := r.Result
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet: %d accounts, seed %d, span %v, %d shards\n",
		res.Accounts, res.Seed, res.Span, res.Shards)
	if res.ScalingNote != "" {
		fmt.Fprintf(&sb, "  scaling: %s\n", res.ScalingNote)
	}

	mix := make([]string, 0, workload.NumKinds)
	for k := workload.AppKind(0); k < workload.NumKinds; k++ {
		mix = append(mix, fmt.Sprintf("%s=%d", k, res.MixCounts[k]))
	}
	fmt.Fprintf(&sb, "  app mix (simulated accounts): %s\n", strings.Join(mix, " "))

	coldPct := 0.0
	if res.TotalRequests > 0 {
		coldPct = 100 * float64(res.TotalColdStarts) / float64(res.TotalRequests)
	}
	fmt.Fprintf(&sb, "  requests served: %d (cold starts %d, %.1f%%)\n",
		res.TotalRequests, res.TotalColdStarts, coldPct)
	if res.ScaleFactor != 1 {
		fmt.Fprintf(&sb, "  modelled fleet total: ~%.0f requests (×%.1f extrapolation)\n",
			float64(res.TotalRequests)*res.ScaleFactor, res.ScaleFactor)
	}

	fmt.Fprintf(&sb, "  per-account monthly cost: p50 %s  p99 %s  p99.9 %s\n",
		res.CostPercentile(50), res.CostPercentile(99), res.CostPercentile(99.9))
	fmt.Fprintf(&sb, "  request latency:          p50 %v  p99 %v  p99.9 %v\n",
		res.LatencyPercentile(50), res.LatencyPercentile(99), res.LatencyPercentile(99.9))

	sb.WriteString("  cold-start fraction vs inter-request gap (knee = 5m warm-container TTL):\n")
	for _, b := range res.GapBuckets {
		if b.Requests == 0 {
			fmt.Fprintf(&sb, "    %-12s %7d req       —\n", b.Label, 0)
			continue
		}
		fmt.Fprintf(&sb, "    %-12s %7d req  %5.1f%% cold\n",
			b.Label, b.Requests, 100*float64(b.ColdStarts)/float64(b.Requests))
	}
	return sb.String()
}

// RenderAccounts prints one line per simulated account — the long-form
// appendix the fleet golden pins, so a single account drifting by one
// request or one nanodollar breaks parity visibly.
func (r *FleetReport) RenderAccounts() string {
	var sb strings.Builder
	for _, a := range r.Result.PerAccount {
		fmt.Fprintf(&sb, "account %06d %-8s requests=%d cold=%d monthly=%dnd\n",
			a.Index, a.Kind, a.Requests, a.ColdStarts, a.MonthlyCost.Nanodollars())
	}
	return sb.String()
}

// RawFingerprint pins the exact nanosecond latency percentiles and
// per-bucket counts, beyond the rounded rendering.
func (r *FleetReport) RawFingerprint() string {
	res := r.Result
	var sb strings.Builder
	fmt.Fprintf(&sb, "raw: requests=%d cold=%d", res.TotalRequests, res.TotalColdStarts)
	for _, p := range []float64{50, 99, 99.9} {
		fmt.Fprintf(&sb, " costp%v=%dnd latp%v=%dns",
			p, res.CostPercentile(p).Nanodollars(), p, int64(res.LatencyPercentile(p)))
	}
	for _, b := range res.GapBuckets {
		fmt.Fprintf(&sb, " gap[%s]=%d/%d", b.Label, b.ColdStarts, b.Requests)
	}
	sb.WriteString("\n")
	return sb.String()
}

// DefaultFleetConfig is the check.sh / golden configuration: 1,000
// accounts over a 30-minute span.
func DefaultFleetConfig() fleet.Config {
	return fleet.Config{Accounts: 1000, Span: 30 * time.Minute, Seed: 1}
}
