package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/pricing"
)

// Table2Row is one regenerated Table 2 service row.
type Table2Row struct {
	Profile Profile
	// ComputeCost is the monthly compute bill (Lambda request +
	// GB-second lines after free tiers, or EC2 instance seconds).
	ComputeCost pricing.Money
	// StorageTransferCost is the monthly storage + internet egress
	// bill (after the 1 GB free transfer allowance).
	StorageTransferCost pricing.Money
	// Total is the row total.
	Total pricing.Money
}

// RunTable2 regenerates every Table 2 row by metering each service's
// monthly usage into a fresh bill. The paper's accounting convention is
// used: compute + storage + transfer (per-request S3/KMS/SQS fees are
// analyzed separately by RunTable2FullAccounting).
func RunTable2() []Table2Row {
	book := pricing.Default2017()
	rows := make([]Table2Row, 0, 5)
	for _, p := range Table2Profiles() {
		m := pricing.NewMeter()
		if p.Provider == "Lambda" {
			m.Add(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: p.MonthlyRequests()})
			m.Add(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: p.MonthlyGBSeconds()})
		} else {
			m.Add(pricing.Usage{
				Kind:     pricing.EC2Seconds,
				Quantity: p.EC2HoursMonth * 3600,
				Resource: p.EC2InstanceType,
			})
		}
		m.Add(pricing.Usage{Kind: pricing.S3StorageGBMo, Quantity: p.StorageGB})
		m.Add(pricing.Usage{Kind: pricing.TransferOutGB, Quantity: p.TransferGBMonth})

		bill := pricing.Compute(book, m)
		row := Table2Row{
			Profile:             p,
			ComputeCost:         bill.TotalOf(pricing.LambdaRequests, pricing.LambdaGBSeconds, pricing.EC2Seconds),
			StorageTransferCost: bill.TotalOf(pricing.S3StorageGBMo, pricing.TransferOutGB),
		}
		row.Total = row.ComputeCost + row.StorageTransferCost
		rows = append(rows, row)
	}
	return rows
}

// FullAccountingRow extends a Table 2 row with the per-request service
// fees the paper's analysis omits (S3 PUT/GET, KMS beyond the free
// tier, SQS beyond the free tier), estimated from each service's
// request mix.
type FullAccountingRow struct {
	Table2Row
	RequestFees pricing.Money
	FullTotal   pricing.Money
}

// RunTable2FullAccounting reprices Table 2 including per-request fees.
// Request-mix assumptions per service: each Lambda request performs one
// S3 GET and one S3 PUT; each chat message also posts one SQS message
// and each member long-polls at the 20 s interval; KMS is called once
// per cold start (data-key caching), ≈300 calls/month.
func RunTable2FullAccounting() []FullAccountingRow {
	book := pricing.Default2017()
	out := make([]FullAccountingRow, 0, 5)
	for _, row := range RunTable2() {
		p := row.Profile
		m := pricing.NewMeter()
		if p.Provider == "Lambda" {
			reqs := p.MonthlyRequests()
			m.Add(pricing.Usage{Kind: pricing.S3GetRequests, Quantity: reqs})
			m.Add(pricing.Usage{Kind: pricing.S3PutRequests, Quantity: reqs})
			m.Add(pricing.Usage{Kind: pricing.KMSRequests, Quantity: 300})
			if p.Application == "Group Chat" {
				m.Add(pricing.Usage{Kind: pricing.SQSRequests, Quantity: reqs})
				// 15 members × 20 s polls: 15 × 131,400/member-month
				// in the worst (non-shared) case; the paper counts
				// 876k for the whole group.
				m.Add(pricing.Usage{Kind: pricing.SQSRequests, Quantity: 876_000})
			}
		}
		fees := pricing.Compute(book, m).Total()
		out = append(out, FullAccountingRow{
			Table2Row:   row,
			RequestFees: fees,
			FullTotal:   row.Total + fees,
		})
	}
	return out
}

// RenderTable2 prints the rows in the paper's column layout.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Per-user costs of potential DIY services\n")
	fmt.Fprintf(&sb, "  %-20s %-8s %8s %12s %6s %8s %10s %12s %10s\n",
		"Application", "Provider", "Req/Day", "Compute/Req", "Mem", "Storage", "Compute$", "Stor+Xfer$", "Total$")
	for _, r := range rows {
		p := r.Profile
		mem := "-"
		if p.LambdaMemMB > 0 {
			mem = fmt.Sprintf("%d", p.LambdaMemMB)
		}
		compute := p.ComputePerRequest.String()
		if p.ComputePerRequest >= time.Minute {
			compute = fmt.Sprintf("%.0f min call", p.ComputePerRequest.Minutes())
		}
		fmt.Fprintf(&sb, "  %-20s %-8s %8.0f %12s %6s %8.0f %10s %12s %10s\n",
			p.Application, p.Provider, p.DailyRequests, compute, mem, p.StorageGB,
			r.ComputeCost, r.StorageTransferCost, r.Total)
	}
	return sb.String()
}

// RenderFullAccounting prints the extended accounting comparison.
func RenderFullAccounting(rows []FullAccountingRow) string {
	var sb strings.Builder
	sb.WriteString("Table 2 (full accounting: adds per-request S3/KMS/SQS fees the paper omits)\n")
	fmt.Fprintf(&sb, "  %-20s %12s %12s %12s\n", "Application", "Paper conv.", "Req. fees", "Full total")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s %12s %12s %12s\n",
			r.Profile.Application, r.Total, r.RequestFees, r.FullTotal)
	}
	return sb.String()
}
