package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/gateway"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/pricing"
)

// DDoSPoint is one row of the §8.2 cost-attack study.
type DDoSPoint struct {
	Throttled      bool
	AttackRequests int
	BilledInvokes  float64
	// ListCost prices the attack's compute at list price (no free-tier
	// credit): the financial damage an attacker can impose.
	ListCost pricing.Money
}

// RunDDoSCostStudy fires a burst of attack requests at a DIY endpoint
// with and without the gateway throttle and prices the damage — the
// §8.2 concern ("DDoS attacks, which can impose high financial cost to
// the user") and its mitigation ("throttling requests using tools
// provided by the cloud provider").
func RunDDoSCostStudy(attackRequests int) ([]DDoSPoint, error) {
	if attackRequests <= 0 {
		attackRequests = 20_000
	}
	run := func(limit gateway.Limit) (DDoSPoint, error) {
		cloud, err := core.NewCloud(core.CloudOptions{Name: "ddos"})
		if err != nil {
			return DDoSPoint{}, err
		}
		d, err := core.Install(cloud, "victim", ddosTarget{limit: limit})
		if err != nil {
			return DDoSPoint{}, err
		}
		for i := 0; i < attackRequests; i++ {
			ctx := &sim.Context{Cursor: sim.NewCursor(cloud.Clock.Now()), External: true}
			d.Invoke(ctx, "get", nil) // errors are the point
		}
		noFree := cloud.Book.WithoutFreeTiers()
		m := pricing.NewMeter()
		m.Add(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: cloud.Meter.Total(pricing.LambdaRequests)})
		m.Add(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: cloud.Meter.Total(pricing.LambdaGBSeconds)})
		return DDoSPoint{
			Throttled:      limit.RPS > 0,
			AttackRequests: attackRequests,
			BilledInvokes:  cloud.Meter.Total(pricing.LambdaRequests),
			ListCost:       pricing.Compute(noFree, m).Total(),
		}, nil
	}

	open, err := run(gateway.Limit{})
	if err != nil {
		return nil, err
	}
	throttled, err := run(gateway.Limit{RPS: 5, Burst: 20})
	if err != nil {
		return nil, err
	}
	return []DDoSPoint{open, throttled}, nil
}

// ddosTarget is a minimal throttlable app.
type ddosTarget struct{ limit gateway.Limit }

func (ddosTarget) Name() string { return "target" }
func (a ddosTarget) Spec() core.AppSpec {
	return core.AppSpec{Endpoint: "/api", Limit: a.limit}
}
func (ddosTarget) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		env.Compute(500 * time.Millisecond) // the Table 2 per-request profile
		return lambda.Response{Status: 200}, nil
	}
}

// RenderDDoS prints the study.
func RenderDDoS(points []DDoSPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation (§8.2): cost of a burst DDoS against a DIY endpoint\n")
	fmt.Fprintf(&sb, "  %-22s %14s %16s %14s\n", "Gateway", "Attack reqs", "Billed invokes", "List cost")
	for _, p := range points {
		mode := "no throttle"
		if p.Throttled {
			mode = "throttle 5 rps"
		}
		fmt.Fprintf(&sb, "  %-22s %14d %16.0f %14s\n", mode, p.AttackRequests, p.BilledInvokes, p.ListCost)
	}
	fmt.Fprintf(&sb, "  (sustained 1M req/day for a month, unthrottled: %s)\n", SustainedAttackMonthly())
	return sb.String()
}

// SustainedAttackMonthly prices a month-long 1M req/day flood at list
// price — the §8.2 "high financial cost" an unthrottled deployment
// risks versus the cents the throttle allows.
func SustainedAttackMonthly() pricing.Money {
	book := pricing.Default2017().WithoutFreeTiers()
	m := pricing.NewMeter()
	reqs := 1_000_000.0 * 30
	m.Add(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: reqs})
	m.Add(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: reqs * 0.5 * 128.0 / 1024.0})
	return pricing.Compute(book, m).Total()
}
