package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/apps/email"
	"repro/internal/apps/filetransfer"
	"repro/internal/apps/iot"
	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// Table2MeasuredRow is one service's *measured* compute usage: the
// closed-form Table 2 assumes the paper's request rates; this harness
// actually drives the applications at those rates through the
// simulator and reads the meter, validating that the arithmetic and
// the implementation agree.
type Table2MeasuredRow struct {
	Application    string
	TargetPerDay   float64
	MeasuredPerDay float64
	// GBSecondsMonth extrapolates the measured day to the month.
	GBSecondsMonth float64
	// ComputeCost is the monthly compute bill at the measured usage.
	ComputeCost pricing.Money
}

// RunTable2Measured replays `days` of Poisson traffic (default 1,
// extrapolated to the month) against real chat, email, file-transfer
// and IoT deployments on one cloud and prices what the meter saw.
func RunTable2Measured(days float64) ([]Table2MeasuredRow, error) {
	if days <= 0 {
		days = 1
	}
	span := time.Duration(days * 24 * float64(time.Hour))
	cloud, err := core.NewCloud(core.CloudOptions{Name: "table2-measured"})
	if err != nil {
		return nil, err
	}

	// Deploy all four serverless services for one user.
	room, err := chat.Install(cloud, "casey", chat.App{Members: []string{"casey", "dana"}, CacheDataKeys: true})
	if err != nil {
		return nil, err
	}
	caseyChat := chat.NewClient(room, "casey", "d")
	if _, err := caseyChat.Session(); err != nil {
		return nil, err
	}
	if _, err := core.Install(cloud, "casey", email.App{}); err != nil {
		return nil, err
	}
	xfer, err := core.Install(cloud, "casey", filetransfer.App{})
	if err != nil {
		return nil, err
	}
	home, err := core.Install(cloud, "casey", iot.App{})
	if err != nil {
		return nil, err
	}
	reg, _ := json.Marshal(iot.Device{Name: "thermostat"})
	if resp, _, err := home.Invoke(home.ClientContext(), "register", reg); err != nil || resp.Status != 200 {
		return nil, fmt.Errorf("table2measured: register: %v (%d)", err, resp.Status)
	}

	// Drivers, one per Table 2 profile.
	type driver struct {
		app     string
		perDay  float64
		seed    int64
		request func(at time.Time) error
	}
	xferPayload := make([]byte, 256<<10)
	drivers := []driver{
		{"chat", 2000, 21, func(at time.Time) error {
			cloud.Clock.Set(at)
			_, err := caseyChat.Send("measured-day message")
			return err
		}},
		{"email", 500, 22, func(at time.Time) error {
			ctx := &sim.Context{App: "email", Cursor: sim.NewCursor(at)}
			return cloud.SES.Deliver(ctx, "peer@remote.net", "casey@"+email.MailDomain,
				[]byte("Subject: measured\r\n\r\nbody\r\n"))
		}},
		{"filetransfer", 100, 23, func(at time.Time) error {
			cloud.Clock.Set(at)
			req, _ := json.Marshal(filetransfer.UploadRequest{
				Name: fmt.Sprintf("f-%d", at.UnixNano()), To: "dana", Data: xferPayload,
			})
			resp, _, err := xfer.Invoke(xfer.ClientContext(), "upload", req)
			if err == nil && resp.Status != 200 {
				return fmt.Errorf("upload status %d", resp.Status)
			}
			return err
		}},
		{"iot", 100, 24, func(at time.Time) error {
			cloud.Clock.Set(at)
			cmd, _ := json.Marshal(iot.Command{Device: "thermostat", Action: "read"})
			resp, _, err := home.Invoke(home.ClientContext(), "command", cmd)
			if err == nil && resp.Status != 200 {
				return fmt.Errorf("command status %d", resp.Status)
			}
			return err
		}},
	}

	// Setup consumed some invocations; snapshot before the measured run.
	baseReq := make(map[string]float64)
	baseGBs := make(map[string]float64)
	for _, d := range drivers {
		baseReq[d.app] = cloud.Meter.TotalFor(pricing.LambdaRequests, d.app)
		baseGBs[d.app] = cloud.Meter.TotalFor(pricing.LambdaGBSeconds, d.app)
	}

	for _, d := range drivers {
		arrivals := workload.NewPoisson(d.seed, d.perDay, cloud.Clock.Now()).ArrivalsWithin(span)
		for _, at := range arrivals {
			if err := d.request(at); err != nil {
				return nil, fmt.Errorf("table2measured: %s: %w", d.app, err)
			}
		}
	}

	book := cloud.Book
	rows := make([]Table2MeasuredRow, 0, len(drivers))
	for _, d := range drivers {
		reqs := cloud.Meter.TotalFor(pricing.LambdaRequests, d.app) - baseReq[d.app]
		gbs := cloud.Meter.TotalFor(pricing.LambdaGBSeconds, d.app) - baseGBs[d.app]
		monthReqs := reqs / days * 30
		monthGBs := gbs / days * 30
		m := pricing.NewMeter()
		m.Add(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: monthReqs})
		m.Add(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: monthGBs})
		rows = append(rows, Table2MeasuredRow{
			Application:    d.app,
			TargetPerDay:   d.perDay,
			MeasuredPerDay: reqs / days,
			GBSecondsMonth: monthGBs,
			ComputeCost:    pricing.Compute(book, m).TotalOf(pricing.LambdaRequests, pricing.LambdaGBSeconds),
		})
	}
	return rows, nil
}

// RenderTable2Measured prints the validation table.
func RenderTable2Measured(rows []Table2MeasuredRow) string {
	var sb strings.Builder
	sb.WriteString("Table 2 validation: applications driven at the paper's rates (measured, extrapolated to the month)\n")
	fmt.Fprintf(&sb, "  %-14s %12s %14s %14s %12s\n", "Application", "Target/day", "Measured/day", "GB-s/month", "Compute$")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s %12.0f %14.0f %14.0f %12s\n",
			r.Application, r.TargetPerDay, r.MeasuredPerDay, r.GBSecondsMonth, r.ComputeCost)
	}
	return sb.String()
}
