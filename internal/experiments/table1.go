package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cloudsim/clock"
	"repro/internal/core"
	"repro/internal/pricing"
)

// Table1 is the regenerated §5 strawman: "Monthly cost of running an
// email service on AWS (most costs do not depend on request volume)."
type Table1 struct {
	Transfer     pricing.Money
	Storage      pricing.Money
	Compute      pricing.Money
	Availability pricing.Money // auto-scale line: free on EC2, but no failover
	Total        pricing.Money
	// ReplicatedTotal doubles the deployment to a second region, the
	// paper's "Replicating the instance to another geographic region
	// doubles this cost" — the HA configuration the abstract's 50×
	// comparison uses.
	ReplicatedTotal pricing.Money
}

// RunTable1 provisions the strawman on a fresh simulated cloud, runs
// it for a billing month, and prices the meter.
func RunTable1() (*Table1, error) {
	cloud, err := core.NewCloud(core.CloudOptions{Name: "table1"})
	if err != nil {
		return nil, err
	}
	sm := Table1Strawman()

	inst, err := cloud.EC2.Launch(sm.InstanceType, cloud.Region, "email-vm", nil, clock.Epoch)
	if err != nil {
		return nil, err
	}
	endOfMonth := clock.Epoch.Add(pricing.Month)
	if err := cloud.EC2.Accrue(inst.ID, endOfMonth); err != nil {
		return nil, err
	}
	cloud.Meter.Add(pricing.Usage{Kind: pricing.S3StorageGBMo, Quantity: sm.StorageGB, App: "email-vm"})
	cloud.Meter.Add(pricing.Usage{Kind: pricing.TransferOutGB, Quantity: sm.TransferGB, App: "email-vm"})

	bill := cloud.Bill()
	t := &Table1{
		Transfer: bill.Line(pricing.TransferOutGB).Cost,
		Storage:  bill.Line(pricing.S3StorageGBMo).Cost,
		Compute:  bill.TotalOf(pricing.EC2Seconds),
	}
	t.Total = t.Transfer + t.Storage + t.Compute + t.Availability
	t.ReplicatedTotal = t.Total + t.Compute + t.Storage // second region re-pays compute+storage
	return t, nil
}

// Render prints the table in the paper's layout.
func (t *Table1) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Monthly cost of running an email service on AWS\n")
	fmt.Fprintf(&sb, "  %-28s %10s\n", "Transfer:", t.Transfer)
	fmt.Fprintf(&sb, "  %-28s %10s\n", "Storage:", t.Storage)
	fmt.Fprintf(&sb, "  %-28s %10s\n", "Compute:", t.Compute)
	fmt.Fprintf(&sb, "  %-28s %10s\n", "Availability (auto-scale):", "Free")
	fmt.Fprintf(&sb, "  %-28s %10s\n", "TOTAL:", t.Total)
	fmt.Fprintf(&sb, "  %-28s %10s\n", "(2-region HA total):", t.ReplicatedTotal)
	return sb.String()
}
