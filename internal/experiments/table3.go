package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/netsim"
	"repro/internal/core"
	"repro/internal/pricing"
)

// Table3 holds the chat prototype statistics (§6.2), measured by
// driving the actual application through the simulated platform.
type Table3 struct {
	MedBilled    time.Duration
	MedRun       time.Duration
	MedE2E       time.Duration
	AllocatedMB  int
	PeakMemoryMB int64
	// CostPer100K is the marginal Lambda cost of 100,000 requests at
	// the measured billed time, with no free-tier credit (request fee
	// plus GB-seconds).
	CostPer100K pricing.Money
	Samples     int
	ColdStarts  int
	// Tail behaviour (not in the paper's table; extra observability).
	P95Run time.Duration
	P99E2E time.Duration
}

// Table3Config parameterizes the prototype run.
type Table3Config struct {
	// Sends is the number of measured messages (default 200).
	Sends int
	// MemoryMB is the function allocation (default 448, the paper's).
	MemoryMB int
	// GapBetweenSends spaces messages on the simulated clock (default
	// 40 s, ≈2000 messages/day).
	GapBetweenSends time.Duration
	// Backend selects the chat state store ("" = S3, "dynamo").
	Backend string
	// Seed overrides the latency model's random seed (0 = default).
	Seed int64
	// DisableObservability turns off the plane metrics interceptor.
	// The parity test runs the prototype both ways and requires
	// bit-identical results: observability must never perturb what it
	// observes.
	DisableObservability bool
	// DisableLogging turns off the log plane (interceptor + service
	// sinks). TestLogsPreserveLedger runs the prototype both ways and
	// requires bit-identical results: the evidence trail must never
	// perturb the evidence.
	DisableLogging bool
	// DisableTracing turns off the X-Ray-sim trace store.
	// TestTracePreservesLedger runs the prototype both ways and
	// requires bit-identical results: storing traces must never move a
	// ledger number.
	DisableTracing bool
}

// RunTable3 deploys the chat prototype on a fresh simulated cloud,
// exchanges messages between two members, and reports the medians the
// paper's Table 3 lists.
func RunTable3(cfg Table3Config) (*Table3, error) {
	if cfg.Sends <= 0 {
		cfg.Sends = 200
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 448
	}
	if cfg.GapBetweenSends <= 0 {
		cfg.GapBetweenSends = 40 * time.Second
	}

	opts := core.CloudOptions{
		Name:                 "table3",
		DisableObservability: cfg.DisableObservability,
		DisableLogging:       cfg.DisableLogging,
		DisableTracing:       cfg.DisableTracing,
	}
	if cfg.Seed != 0 {
		params := netsim.DefaultParams()
		params.Seed = cfg.Seed
		opts.NetParams = &params
	}
	cloud, err := core.NewCloud(opts)
	if err != nil {
		return nil, err
	}
	d, err := chat.Install(cloud, "proto", chat.App{
		Members:  []string{"alice", "bob"},
		MemoryMB: cfg.MemoryMB,
		Backend:  cfg.Backend,
	})
	if err != nil {
		return nil, err
	}
	alice := chat.NewClient(d, "alice", "laptop")
	bob := chat.NewClient(d, "bob", "phone")
	if _, err := alice.Session(); err != nil {
		return nil, err
	}
	if _, err := bob.Session(); err != nil {
		return nil, err
	}

	var billed, run, e2e []time.Duration
	var peak int64
	cold := 0
	for i := 0; i < cfg.Sends; i++ {
		cloud.Clock.Advance(cfg.GapBetweenSends)
		sendStart := cloud.Clock.Now()

		stats, sentAt, err := alice.SendTimed(fmt.Sprintf("message %d from the prototype run", i))
		if err != nil {
			return nil, fmt.Errorf("table3 send %d: %w", i, err)
		}
		billed = append(billed, stats.BilledTime)
		run = append(run, stats.RunTime)
		if stats.PeakMemoryBytes > peak {
			peak = stats.PeakMemoryBytes
		}
		if stats.ColdStart {
			cold++
		}

		// Bob's long poll was outstanding before the send: E2E runs
		// from the send initiation to his decrypted delivery.
		pollCtx := bob.PollContext(sendStart)
		msgs, err := bob.Receive(pollCtx, 20*time.Second)
		if err != nil {
			return nil, fmt.Errorf("table3 receive %d: %w", i, err)
		}
		if len(msgs) != 1 {
			return nil, fmt.Errorf("table3 receive %d: got %d messages", i, len(msgs))
		}
		// Causality check on the simulated timeline: Bob's decrypted
		// delivery can never precede the instant Alice's send completed.
		if delivered := pollCtx.Cursor.Now(); delivered.Before(sentAt) {
			return nil, fmt.Errorf("table3 receive %d: delivered at %v before send completed at %v", i, delivered, sentAt)
		}
		e2e = append(e2e, pollCtx.Cursor.Now().Sub(sendStart))
	}

	fn, _ := cloud.Lambda.Function(d.FnName)
	medBilled := median(billed)
	book := cloud.Book
	perRequest := book.LambdaPerMillionRequests.MulFloat(1.0/1e6) +
		book.LambdaPerGBSecond.MulFloat(medBilled.Seconds()*float64(fn.MemoryMB)/1024)

	return &Table3{
		MedBilled:    medBilled,
		MedRun:       median(run),
		MedE2E:       median(e2e),
		P95Run:       percentile(run, 95),
		P99E2E:       percentile(e2e, 99),
		AllocatedMB:  fn.MemoryMB,
		PeakMemoryMB: peak >> 20,
		CostPer100K:  perRequest.MulFloat(100_000),
		Samples:      cfg.Sends,
		ColdStarts:   cold,
	}, nil
}

// Render prints the statistics in the paper's Table 3 layout.
func (t *Table3) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3: Statistics collected for our chat service\n")
	fmt.Fprintf(&sb, "  %-38s %10v\n", "Med. Lambda Time Billed", t.MedBilled.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10v\n", "Med. Lambda Time Run", t.MedRun.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10v\n", "E2E Chat Latency (median)", t.MedE2E.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %7d MB\n", "Lambda Memory Allocated", t.AllocatedMB)
	fmt.Fprintf(&sb, "  %-38s %7d MB\n", "Peak Memory Used", t.PeakMemoryMB)
	fmt.Fprintf(&sb, "  %-38s %10s\n", "Med. Lambda Cost per 100K Requests", t.CostPer100K)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(samples)", t.Samples)
	fmt.Fprintf(&sb, "  %-38s %10d\n", "(cold starts)", t.ColdStarts)
	fmt.Fprintf(&sb, "  %-38s %10v\n", "(p95 run)", t.P95Run.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-38s %10v\n", "(p99 E2E)", t.P99E2E.Round(time.Millisecond))
	return sb.String()
}

// median returns the middle sample (lower of two for even counts).
func median(samples []time.Duration) time.Duration { return percentile(samples, 50) }

// percentile returns the p-th percentile sample (nearest-rank).
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := len(cp) * p / 100
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
