package workload

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func TestPoissonRate(t *testing.T) {
	p := NewPoisson(1, 2000, t0) // the paper's chat request rate
	arrivals := p.ArrivalsWithin(30 * 24 * time.Hour)
	perDay := float64(len(arrivals)) / 30
	if perDay < 1800 || perDay > 2200 {
		t.Fatalf("empirical rate %.0f/day, want ≈2000", perDay)
	}
	// Arrivals are strictly ordered.
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Before(arrivals[i-1]) {
			t.Fatal("arrivals out of order")
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := NewPoisson(42, 500, t0).ArrivalsWithin(24 * time.Hour)
	b := NewPoisson(42, 500, t0).ArrivalsWithin(24 * time.Hour)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestPoissonZeroRate(t *testing.T) {
	p := NewPoisson(1, 0, t0)
	if got := p.ArrivalsWithin(24 * time.Hour); len(got) != 0 {
		t.Fatalf("zero rate produced %d arrivals", len(got))
	}
}

func TestDiurnalShape(t *testing.T) {
	// Overnight is quieter than the morning peak.
	if Diurnal(3) >= Diurnal(10) {
		t.Fatalf("3am (%v) not quieter than 10am (%v)", Diurnal(3), Diurnal(10))
	}
	if Diurnal(3) >= Diurnal(20) {
		t.Fatalf("3am (%v) not quieter than 8pm (%v)", Diurnal(3), Diurnal(20))
	}
	// Mean over the day is ≈ 1 so rates stay calibrated.
	var sum float64
	for h := 0; h < 24; h++ {
		sum += Diurnal(h)
	}
	if mean := sum / 24; math.Abs(mean-1) > 0.15 {
		t.Fatalf("diurnal mean %v, want ≈1", mean)
	}
	// Wraparound handles any input.
	if Diurnal(-1) != Diurnal(23) || Diurnal(24) != Diurnal(0) {
		t.Fatal("hour wraparound broken")
	}
}

func TestSlackTraceCalibration(t *testing.T) {
	// The paper's group: 5000 messages/week among 15 members. Over 4
	// simulated weeks the trace must land near that rate.
	g := PaperSlackGroup()
	span := 28 * 24 * time.Hour
	events := g.Trace(t0, span)
	perWeek := float64(len(events)) / 4
	if perWeek < 4000 || perWeek > 6000 {
		t.Fatalf("trace rate %.0f/week, want ≈5000", perWeek)
	}
	// All senders are group members and bodies are non-empty.
	members := make(map[string]bool)
	for _, m := range g.Members {
		members[m] = true
	}
	senders := make(map[string]bool)
	for _, e := range events {
		if !members[e.From] {
			t.Fatalf("non-member sender %q", e.From)
		}
		if e.Body == "" {
			t.Fatal("empty body")
		}
		if e.At.Before(t0) || !e.At.Before(t0.Add(span)) {
			t.Fatalf("event outside span: %v", e.At)
		}
		senders[e.From] = true
	}
	if len(senders) < 10 {
		t.Fatalf("only %d of 15 members ever spoke", len(senders))
	}
	// PerDay agrees.
	perDay := PerDay(events, span)
	if math.Abs(perDay-float64(len(events))/28) > 1e-9 {
		t.Fatalf("PerDay = %v", perDay)
	}
	if PerDay(nil, 0) != 0 {
		t.Fatal("PerDay zero-span not handled")
	}
}

func TestSlackTraceDiurnal(t *testing.T) {
	g := PaperSlackGroup()
	events := g.Trace(t0, 28*24*time.Hour)
	night, day := 0, 0
	for _, e := range events {
		switch h := e.At.Hour(); {
		case h >= 1 && h < 6:
			night++
		case h >= 9 && h < 22:
			day++
		}
	}
	// Day hours (13h window) must dominate night hours (5h window) by
	// far more than the window ratio alone (2.6x).
	if float64(day) < 4*float64(night) {
		t.Fatalf("diurnal modulation weak: day %d vs night %d", day, night)
	}
}
