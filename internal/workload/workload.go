// Package workload generates the request traces the experiments replay:
// Poisson arrivals at the paper's per-service daily rates, a diurnal
// modulation, and the Slack-like group chat trace the paper calibrates
// against ("the authors' Slack group sends an average of 5000 Slack
// messages per week among a group of 15 people").
//
// All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Poisson generates exponentially distributed interarrival times for a
// given daily rate.
type Poisson struct {
	rng     *rand.Rand
	perDay  float64
	current time.Time
}

// NewPoisson returns a Poisson arrival process starting at start.
func NewPoisson(seed int64, perDay float64, start time.Time) *Poisson {
	return &Poisson{rng: rand.New(rand.NewSource(seed)), perDay: perDay, current: start}
}

// Next advances to and returns the next arrival instant.
func (p *Poisson) Next() time.Time {
	if p.perDay <= 0 {
		p.current = p.current.Add(24 * time.Hour)
		return p.current
	}
	meanGap := 24 * time.Hour / time.Duration(math.Max(p.perDay, 1e-9))
	gap := time.Duration(p.rng.ExpFloat64() * float64(meanGap))
	p.current = p.current.Add(gap)
	return p.current
}

// ArrivalsWithin returns all arrivals inside [start, start+window).
func (p *Poisson) ArrivalsWithin(window time.Duration) []time.Time {
	end := p.current.Add(window)
	var out []time.Time
	for {
		t := p.Next()
		if !t.Before(end) {
			p.current = end
			return out
		}
		out = append(out, t)
	}
}

// Diurnal reports a rate multiplier for the hour of day, integrating
// to ~1 over 24 hours: quiet overnight, a morning and an evening peak
// — the shape of personal communication traffic.
func Diurnal(hour int) float64 {
	h := float64(((hour % 24) + 24) % 24)
	morning := math.Exp(-math.Pow(h-10, 2) / 18)
	evening := math.Exp(-math.Pow(h-20, 2) / 12)
	base := 0.25 + 1.9*morning + 1.6*evening
	return base / 1.33 // normalizing constant for 24h mean ≈ 1
}

// ChatEvent is one message in a group chat trace.
type ChatEvent struct {
	At   time.Time
	From string
	Body string
}

// SlackGroup parameterizes the paper's calibration group.
type SlackGroup struct {
	Members     []string
	MsgsPerWeek float64
	Seed        int64
	// BodyBytes is the mean message length (120 bytes if zero).
	BodyBytes int
}

// PaperSlackGroup returns the group from §6.1: 5000 messages per week
// among 15 people.
func PaperSlackGroup() SlackGroup {
	members := make([]string, 15)
	for i := range members {
		members[i] = fmt.Sprintf("member%02d", i)
	}
	return SlackGroup{Members: members, MsgsPerWeek: 5000, Seed: 7}
}

// Trace generates the group's messages over the given span starting at
// start, Poisson in time with diurnal modulation, senders drawn
// uniformly.
func (g SlackGroup) Trace(start time.Time, span time.Duration) []ChatEvent {
	rng := rand.New(rand.NewSource(g.Seed))
	perDay := g.MsgsPerWeek / 7
	bodyBytes := g.BodyBytes
	if bodyBytes <= 0 {
		bodyBytes = 120
	}
	var out []ChatEvent
	cur := start
	end := start.Add(span)
	for {
		// Thin a homogeneous process by the diurnal weight.
		meanGap := 24 * time.Hour / time.Duration(math.Max(perDay*2.2, 1e-9))
		cur = cur.Add(time.Duration(rng.ExpFloat64() * float64(meanGap)))
		if !cur.Before(end) {
			return out
		}
		if rng.Float64() > Diurnal(cur.Hour())/2.2 {
			continue
		}
		n := bodyBytes/2 + rng.Intn(bodyBytes)
		out = append(out, ChatEvent{
			At:   cur,
			From: g.Members[rng.Intn(len(g.Members))],
			Body: synthBody(rng, n),
		})
	}
}

// PerDay reports the trace's average daily message count.
func PerDay(events []ChatEvent, span time.Duration) float64 {
	days := span.Hours() / 24
	if days <= 0 {
		return 0
	}
	return float64(len(events)) / days
}

var words = []string{
	"ok", "ship", "it", "deploy", "lambda", "meeting", "at", "noon",
	"did", "you", "see", "the", "latency", "numbers", "lgtm", "cost",
	"table", "updated", "privacy", "review", "done", "coffee", "break",
}

func synthBody(rng *rand.Rand, targetBytes int) string {
	var b []byte
	for len(b) < targetBytes {
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, words[rng.Intn(len(words))]...)
	}
	return string(b)
}
