package workload

import (
	"math"
	"math/rand"
)

// This file partitions the workload generators across a fleet: account
// index → an independent, replay-stable PRNG stream family, plus the
// per-account application profile (which DIY app the account runs, at
// what rate) drawn from a seeded distribution. The derivation is
// splitmix64-style — a bijective avalanche finalizer — so neighbouring
// account indices land in statistically unrelated stream roots and two
// accounts only share a stream if they share a root seed on purpose.

// splitmix64 is the splitmix64 output finalizer: a bijection on uint64
// with full avalanche, the standard cheap way to turn a counter into an
// independent-looking seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamTag hashes a substream name (FNV-1a) so named substreams of one
// account ("arrivals", "netsim", "profile", ...) are mutually
// independent.
func streamTag(name string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime
	}
	return h
}

// AccountSeed derives the root seed of account index's PRNG stream
// partition from the fleet's base seed. Distinct (base, index) pairs
// map to distinct roots (splitmix64 is bijective per base), and the
// mapping is pure — replaying a fleet re-derives identical streams
// regardless of account evaluation order.
func AccountSeed(base int64, index int) int64 {
	return int64(splitmix64(uint64(base) + splitmix64(uint64(index)+1)))
}

// Substream derives the seed of one named substream under a root seed,
// so an account can draw its arrival process, its latency model, and
// its profile from independent streams of the same partition.
func Substream(root int64, name string) int64 {
	return int64(splitmix64(uint64(root) ^ streamTag(name)))
}

// AppKind identifies which DIY application an account runs (§6.1's
// suite: chat, email, file drop, IoT controller).
type AppKind int

const (
	KindChat AppKind = iota
	KindEmail
	KindFiledrop
	KindIoT
	// NumKinds bounds the enum for array-indexed aggregation.
	NumKinds
)

// String names the kind for rendered output.
func (k AppKind) String() string {
	switch k {
	case KindChat:
		return "chat"
	case KindEmail:
		return "email"
	case KindFiledrop:
		return "filedrop"
	case KindIoT:
		return "iot"
	}
	return "unknown"
}

// AccountProfile is everything the fleet engine needs to replay one
// account: its stream partition root, which app it runs, and how hard
// it drives it.
type AccountProfile struct {
	// Index is the account's position in the fleet.
	Index int
	// Kind is the app this account deploys.
	Kind AppKind
	// Seed is the root of the account's PRNG stream partition; derive
	// substreams with Substream.
	Seed int64
	// RequestsPerDay is the account's mean daily request rate.
	RequestsPerDay float64
	// BodyBytes is the mean request payload size.
	BodyBytes int
}

// appMix is the fleet's app-kind distribution: chat-heavy, per the
// paper's framing of messaging as the primary personal workload.
// Indexed by AppKind; weights sum to 1.
var appMix = [NumKinds]float64{0.40, 0.25, 0.15, 0.20}

// kindBaseline is the per-kind mean daily request rate and payload
// size the profile distribution centres on. Chat's 2000/day matches the
// Table 3 prototype spacing; email/filedrop/IoT scale down and up from
// the Table 2 usage assumptions. The spread of rates matters beyond
// cost: inter-request gaps straddle the Lambda warm-container TTL, so
// the fleet sees the full cold-start-vs-idle-gap curve.
var kindBaseline = [NumKinds]struct {
	perDay float64
	body   int
}{
	KindChat:     {2000, 120},
	KindEmail:    {120, 4 << 10},
	KindFiledrop: {24, 48 << 10},
	KindIoT:      {480, 256},
}

// Profile draws account index's profile from the fleet's seeded
// distribution: the app kind by the mix weights, the daily rate
// log-normal around the kind's baseline (σ = 0.35, so accounts differ
// by up to ~3× — a fleet, not a thousand clones), the payload size
// uniform in [½, 1½]× the baseline.
func Profile(base int64, index int) AccountProfile {
	seed := AccountSeed(base, index)
	rng := rand.New(rand.NewSource(Substream(seed, "profile")))

	kind := NumKinds - 1
	r := rng.Float64()
	for k := AppKind(0); k < NumKinds; k++ {
		if r < appMix[k] {
			kind = k
			break
		}
		r -= appMix[k]
	}
	b := kindBaseline[kind]
	rate := b.perDay * math.Exp(0.35*rng.NormFloat64())
	body := b.body/2 + rng.Intn(b.body)
	return AccountProfile{
		Index:          index,
		Kind:           kind,
		Seed:           seed,
		RequestsPerDay: rate,
		BodyBytes:      body,
	}
}
