package workload

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestAccountSeedPartition is the satellite property test: partitioned
// seed streams must be non-overlapping (no two accounts share a stream
// prefix) and replay-stable (re-deriving a stream yields identical
// draws).
func TestAccountSeedPartition(t *testing.T) {
	const accounts, draws = 500, 8
	const base = int64(42)

	// Roots must be unique per account.
	roots := make(map[int64]int, accounts)
	for i := 0; i < accounts; i++ {
		s := AccountSeed(base, i)
		if prev, dup := roots[s]; dup {
			t.Fatalf("accounts %d and %d share root seed %d", prev, i, s)
		}
		roots[s] = i
	}

	// Stream prefixes must be disjoint across accounts and substreams:
	// fingerprint the first draws of each stream and require global
	// uniqueness.
	streams := []string{"arrivals", "netsim", "profile"}
	seen := make(map[string]string)
	for i := 0; i < accounts; i++ {
		for _, name := range streams {
			rng := rand.New(rand.NewSource(Substream(AccountSeed(base, i), name)))
			fp := ""
			for d := 0; d < draws; d++ {
				fp += fmt.Sprintf("%x.", rng.Uint64())
			}
			id := fmt.Sprintf("account %d stream %s", i, name)
			if prev, dup := seen[fp]; dup {
				t.Fatalf("%s and %s produced identical %d-draw prefixes", prev, id, draws)
			}
			seen[fp] = id

			// Replay stability: re-deriving the stream reproduces the
			// exact draws.
			again := rand.New(rand.NewSource(Substream(AccountSeed(base, i), name)))
			fp2 := ""
			for d := 0; d < draws; d++ {
				fp2 += fmt.Sprintf("%x.", again.Uint64())
			}
			if fp2 != fp {
				t.Fatalf("%s not replay-stable", id)
			}
		}
	}

	// Replay stability, end to end: the profile (which consumes the
	// stream) must be identical on re-derivation.
	for i := 0; i < accounts; i += 97 {
		a, b := Profile(base, i), Profile(base, i)
		if a != b {
			t.Fatalf("Profile(%d, %d) not replay-stable: %+v vs %+v", base, i, a, b)
		}
	}

	// Different base seeds repartition every stream.
	if AccountSeed(base, 7) == AccountSeed(base+1, 7) {
		t.Fatal("different base seeds must derive different account roots")
	}
}

// TestProfileDistribution sanity-checks the seeded app-mix draw: every
// kind appears, chat dominates, and rates stay positive and centred
// near the kind baselines.
func TestProfileDistribution(t *testing.T) {
	const accounts = 2000
	var counts [NumKinds]int
	for i := 0; i < accounts; i++ {
		p := Profile(1, i)
		if p.Kind < 0 || p.Kind >= NumKinds {
			t.Fatalf("account %d drew kind %d out of range", i, p.Kind)
		}
		counts[p.Kind]++
		if p.RequestsPerDay <= 0 {
			t.Fatalf("account %d drew non-positive rate %v", i, p.RequestsPerDay)
		}
		if p.BodyBytes <= 0 {
			t.Fatalf("account %d drew non-positive body size %d", i, p.BodyBytes)
		}
	}
	for k := AppKind(0); k < NumKinds; k++ {
		if counts[k] == 0 {
			t.Errorf("kind %v never drawn in %d accounts", k, accounts)
		}
		if counts[k] > counts[KindChat] {
			t.Errorf("kind %v (%d) drawn more often than chat (%d); mix weights inverted?",
				k, counts[k], counts[KindChat])
		}
	}
}

// TestPoissonSequencePinned is the satellite regression test: the exact
// arrival sequence for a fixed seed. Any change to the generator's
// draw order shows up as a diff here before it silently moves every
// fleet golden.
func TestPoissonSequencePinned(t *testing.T) {
	start := time.Date(2017, time.June, 1, 0, 0, 0, 0, time.UTC)
	p := NewPoisson(7, 2000, start)
	var got []int64
	for i := 0; i < 6; i++ {
		got = append(got, p.Next().Sub(start).Nanoseconds())
	}
	want := []int64{
		36008292536, 70940545965, 83761682441,
		149047471253, 202912009973, 228345865955,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d at +%dns, want +%dns (full sequence %v)", i, got[i], want[i], got)
		}
	}
}

// TestDiurnalPinned pins the diurnal curve at every hour, and its
// normalization property (24h mean ≈ 1).
func TestDiurnalPinned(t *testing.T) {
	want := map[int]float64{0: 0.194, 10: 1.617, 20: 1.396, 23: 0.756}
	for hour, w := range want {
		got := Diurnal(hour)
		if diff := got - w; diff > 0.001 || diff < -0.001 {
			t.Errorf("Diurnal(%d) = %.3f, want %.3f±0.001", hour, got, w)
		}
	}
	sum := 0.0
	for h := 0; h < 24; h++ {
		sum += Diurnal(h)
	}
	if mean := sum / 24; mean < 0.9 || mean > 1.1 {
		t.Errorf("24h mean %v, want ≈1", mean)
	}
}
