package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobalState guards the fleet engine's sharding premise: every account
// shard must own its world, so simulator, app, and workload packages may
// not keep mutable state at package level — two shards running in the
// same process would alias it and replay would stop being bit-identical
// (or worse, race). State hangs off Cloud or the owning service struct.
// A package-level variable is mutable when the loaded program ever
// assigns it (directly or through an index/field) or aliases it (& or a
// pointer-receiver method call such as sync.Pool.Get, Mutex.Lock,
// atomic.Value.Store). Immutable tables, error sentinels, and compiled
// regexps are naturally silent. Deliberate process-wide state — a
// sync.Pool of scratch encoders, a registered-at-init op registry —
// carries a justified .diylint-allow entry.
var GlobalState = &Analyzer{
	Name: "globalstate",
	Doc:  "sim/app/workload packages must not declare mutable package-level variables; state hangs off Cloud/service structs so accounts can shard",
	Run:  runGlobalState,
}

func runGlobalState(p *Pass) {
	if !inSimScope(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					v, ok := p.Pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					switch {
					case mutatedVar(p.Facts, v):
						p.Reportf(name.Pos(),
							"package-level variable %s is assigned at runtime; move it onto the Cloud or service struct so account shards cannot alias it",
							name.Name)
					case aliasedVar(p.Facts, v):
						p.Reportf(name.Pos(),
							"package-level variable %s is aliased at runtime (address taken or pointer-receiver method called); move it onto the Cloud or service struct so account shards cannot alias it",
							name.Name)
					}
				}
			}
		}
	}
}

func mutatedVar(f *Facts, v *types.Var) bool {
	_, ok := f.VarMutated(v)
	return ok
}

func aliasedVar(f *Facts, v *types.Var) bool {
	_, ok := f.VarAddrTaken(v)
	return ok
}
