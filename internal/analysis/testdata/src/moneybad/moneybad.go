// Package moneybad does money arithmetic outside internal/pricing;
// the moneyfloat analyzer must flag the scaling and both float
// conversions (addition stays legal — it is exact).
package moneybad

import "repro/internal/pricing"

// Scale round-trips a Money through float64, losing nanodollar parity.
func Scale(m pricing.Money, f float64) pricing.Money {
	return pricing.Money(float64(m) * f)
}

// Half divides money outside the pricing package.
func Half(m pricing.Money) pricing.Money {
	return m / 2
}

// Total sums costs; exact, so not flagged.
func Total(a, b pricing.Money) pricing.Money {
	return a + b
}
