// Package moneygood handles money only through the sanctioned
// pricing.Money API; the moneyfloat analyzer must stay silent.
package moneygood

import "repro/internal/pricing"

// Scale uses the rounding-aware method instead of raw float math.
func Scale(m pricing.Money, f float64) pricing.Money {
	return m.MulFloat(f)
}

// Total sums exact nanodollar amounts.
func Total(a, b pricing.Money) pricing.Money {
	return a + b
}

// Display renders dollars through the sanctioned accessor.
func Display(m pricing.Money) string {
	return m.String()
}
