// Package graphfix exercises the analysis substrate's call-graph
// corners: a two-function cycle, a method value called through a
// binding, interface dispatch resolved by the module-implementations
// fallback, a function literal hanging off its enclosing declaration,
// and the Emits fact flowing through a helper. substrate_test.go
// asserts on the graph this package produces; no analyzer runs here.
package graphfix

import "fmt"

// Ping and Pong form the cycle a fixpoint must not spin on.
func Ping() { Pong() }
func Pong() { Ping() }

// T carries the method taken as a value.
type T struct{}

// M is referenced without being called directly.
func (T) M() {}

// UseMethodValue binds t.M to f and calls through the binding; the
// graph needs a reference edge to T.M even though the call site's
// callee is unresolvable.
func UseMethodValue(t T) {
	f := t.M
	f()
}

// Ringer is a module interface: calls through it fall back to edges
// into every module implementation.
type Ringer interface{ Ring() }

// Bell and Gong both implement Ringer.
type Bell struct{}

func (Bell) Ring() {}

type Gong struct{}

func (Gong) Ring() { fmt.Println("gong") }

// RingAll dispatches through the interface; the fallback must add
// edges to Bell.Ring and Gong.Ring.
func RingAll(r Ringer) { r.Ring() }

// WithLit returns a closure; the literal gets its own node, named and
// positioned by this enclosing declaration, with an encloser edge in
// and a call edge out to Ping.
func WithLit() func() {
	return func() { Ping() }
}

// Emit prints, CallsEmit reaches it — the Emits fact must hold for
// both and for Gong.Ring, and for nothing else here.
func Emit() { fmt.Println("emit") }

// CallsEmit emits one hop removed.
func CallsEmit() { Emit() }

// hits is package-level and mutated; reads is package-level and only
// read — the variable-fact indexes must tell them apart.
var hits int

var reads = []string{"a", "b"}

// Bump mutates hits and reads reads.
func Bump() {
	hits++
	_ = reads[0]
}
