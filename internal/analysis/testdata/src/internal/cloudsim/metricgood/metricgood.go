// Package metricgood publishes and queries metric series through the
// registry constants only; metricname must stay silent.
package metricgood

import (
	"time"

	"repro/internal/cloudsim/metrics"
)

// Publish records one sample and reads back a windowed stat, naming
// the series by registry constant both times.
func Publish(s *metrics.Service, at time.Time) float64 {
	s.Record("svc/op", metrics.MetricPlaneRequests, at, 1)
	return s.Percentile("svc/op", metrics.MetricPlaneLatencyMs, at, at, 99)
}
