// Package errgood propagates every error in simulator-scoped code;
// the droppederr analyzer must stay silent.
package errgood

import "errors"

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Run propagates the single error result.
func Run() error {
	return work()
}

// Both propagates the error half of a multi-value return.
func Both() (int, error) {
	v, err := pair()
	if err != nil {
		return 0, err
	}
	return v, nil
}
