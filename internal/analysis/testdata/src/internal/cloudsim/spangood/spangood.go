// Package spangood exports simulated-service methods that keep the
// span API in the loop, directly and through the usual unexported
// `begin` delegation; spanhygiene must stay silent.
package spangood

import (
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
)

// Service is a simulated service with full trace coverage.
type Service struct{}

// Get opens its span directly.
func (s *Service) Get(ctx *sim.Context, key string) string {
	sp := ctx.StartSpan("spangood", "Get")
	defer ctx.FinishSpan(sp)
	return key
}

// Put reaches the span API through an unexported helper.
func (s *Service) Put(ctx *sim.Context, key string) {
	sp := s.begin(ctx)
	defer ctx.FinishSpan(sp)
}

// begin is the delegation pattern the real services use.
func (s *Service) begin(ctx *sim.Context) *trace.Span {
	sp := ctx.StartSpan("spangood", "op")
	sp.Annotate("key", "value")
	return sp
}
