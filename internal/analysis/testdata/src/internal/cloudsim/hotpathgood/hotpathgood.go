// Package hotpathgood publishes telemetry from a plane interceptor the
// fast way: names are interned once per (service, op) into a map built
// with make, and per-call work is appends and integer handles. hotpath
// must stay silent.
package hotpathgood

import (
	"fmt"

	"repro/internal/cloudsim/plane"
)

// publisher interns namespace strings on first sight; steady-state
// publication is two map reads and an append.
type publisher struct {
	byService map[string]map[string]string
	sink      []string
}

// PlaneInterceptor builds the interning tables with make (allowed: the
// allocation happens once, not per call) and publishes through them.
func PlaneInterceptor() plane.Interceptor {
	p := &publisher{byService: make(map[string]map[string]string)}
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			err := next(req)
			p.publish(req)
			return err
		}
	}
}

// publish resolves the interned name, minting it only on first sight
// with plain concatenation.
func (p *publisher) publish(req *plane.Request) {
	ops := p.byService[req.Call.Service]
	if ops == nil {
		ops = make(map[string]string)
		p.byService[req.Call.Service] = ops
	}
	ns := ops[req.Call.Op]
	if ns == "" {
		ns = req.Call.Service + "/" + req.Call.Op
		ops[req.Call.Op] = ns
	}
	p.sink = append(p.sink, ns)
}

// Render formats for humans — dashboards, dumps — and is not reachable
// from the interceptor, so formatting here is fine.
func Render(service, op string) string {
	return fmt.Sprintf("%s/%s", service, op)
}
