// Package metricbad publishes metric series under ad-hoc names — a
// string literal, a locally minted constant, and a variable — instead
// of the registry constants; metricname must flag every one.
package metricbad

import (
	"time"

	"repro/internal/cloudsim/metrics"
)

// MetricAdHoc mints a series name outside the registry, in a casing
// the exposition's name flattening cannot handle.
const MetricAdHoc = "Lambda.RunMS"

// Publish records and queries series the dashboard will never group
// correctly.
func Publish(s *metrics.Service, at time.Time) float64 {
	s.Record("svc/op", "requests.total.adhoc", at, 1)
	s.Record("svc/op", MetricAdHoc, at, 1)
	name := metrics.MetricPlaneRequests
	return s.Sum("svc/op", name, at, at)
}
