// Package loggroupgood names log groups by registry expression at
// every store-API call site; loggroup must stay silent.
package loggroupgood

import (
	"time"

	"repro/internal/cloudsim/logs"
)

// Emit writes an event and reads back across groups, deriving every
// group name from the logs package at the call site.
func Emit(s *logs.Service, fn string, at time.Time) (int, error) {
	s.PutEvents(logs.LambdaGroup(fn), "stream", logs.Event{Time: at, Message: "kept"})
	audit := s.Events(logs.LogGroupKMSAudit, time.Time{}, time.Time{})
	res, err := s.Query(logs.PlaneGroup("s3"), `stats count(*) as n`, time.Time{}, time.Time{})
	if err != nil {
		return 0, err
	}
	return len(audit) + len(res.Rows), nil
}
