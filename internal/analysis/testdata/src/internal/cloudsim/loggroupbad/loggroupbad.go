// Package loggroupbad names log groups ad hoc — a locally minted
// constant in the wrong shape, a string literal, and a variable —
// instead of the registry expressions; loggroup must flag every one.
package loggroupbad

import (
	"time"

	"repro/internal/cloudsim/logs"
)

// LogGroupShadow mints a group name outside the registry, in a casing
// the store's own validation rejects.
const LogGroupShadow = "Lambda/Proto"

// Emit writes and reads events under groups no retention policy or
// query will ever cover.
func Emit(s *logs.Service, at time.Time) int {
	s.PutEvents("lambda/protochat", "stream", logs.Event{Time: at, Message: "orphaned"})
	s.PutEvents(LogGroupShadow, "stream", logs.Event{Time: at, Message: "shadowed"})
	group := logs.LambdaGroup("proto-chat")
	return len(s.Tail(group, 5))
}
