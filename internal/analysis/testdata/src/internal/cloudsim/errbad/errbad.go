// Package errbad discards errors with `_ =` in simulator-scoped code;
// both discards must be flagged by droppederr.
package errbad

import "errors"

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Run swallows a single error result.
func Run() {
	_ = work()
}

// Both swallows the error half of a multi-value return.
func Both() int {
	v, _ := pair()
	return v
}
