// Package planebad exports a simulated-service method that accepts a
// *sim.Context but handles the call with a bespoke span/latency path
// instead of routing through plane.Do; planeroute must flag it.
package planebad

import "repro/internal/cloudsim/sim"

// Service is a simulated service that bypasses the request plane.
type Service struct{}

// Get opens its own span and advances the timeline by hand — the old
// per-service `begin` pattern the plane replaced.
func (s *Service) Get(ctx *sim.Context, key string) string {
	sp := ctx.StartSpan("planebad", "Get")
	defer ctx.FinishSpan(sp)
	ctx.Advance(0)
	return key
}
