// Package wallgood is simulator-scoped code that takes all time from
// an injected clock.Clock; the wallclock analyzer must stay silent.
package wallgood

import (
	"time"

	"repro/internal/cloudsim/clock"
)

// Deadline computes a poll deadline on the injected timeline.
func Deadline(clk clock.Clock, wait time.Duration) time.Time {
	return clk.Now().Add(wait)
}

// Park blocks on the injected clock's timeline, not a real timer.
func Park(clk clock.Clock, d time.Duration) time.Time {
	return <-clock.After(clk, d)
}

// Age measures elapsed simulated time.
func Age(clk clock.Clock, start time.Time) time.Duration {
	return clk.Now().Sub(start)
}
