// Package mapgood iterates maps the deterministic ways: sorting the
// keys before anything observable happens, or folding order-insensitive
// aggregates. maporder must stay silent on every function here.
package mapgood

import (
	"fmt"
	"sort"
)

// Render collects, sorts, then prints — the collect-then-sort idiom the
// sortedKeys helper packages up. The map range body only appends.
func Render(stats map[string]int) {
	keys := make([]string, 0, len(stats))
	for k := range stats { // silent: append is not a sink
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // silent: ranges a slice, not a map
		fmt.Printf("%s=%d\n", k, stats[k])
	}
}

// Total folds an order-insensitive sum; the emission happens after the
// loop, on a value the iteration order cannot perturb.
func Total(stats map[string]int) {
	sum := 0
	for _, v := range stats { // silent: the fold is order-insensitive
		sum += v
	}
	fmt.Println(sum)
}

// Invert builds another map — order-insensitive by construction.
func Invert(stats map[string]int) map[int]string {
	out := make(map[int]string, len(stats))
	for k, v := range stats { // silent: writes a map, emits nothing
		out[v] = k
	}
	return out
}
