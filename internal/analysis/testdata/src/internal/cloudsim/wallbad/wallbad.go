// Package wallbad reads the wall clock from simulator-scoped code;
// every use below must be flagged by the wallclock analyzer.
package wallbad

import "time"

// Deadline computes a poll deadline from the process clock.
func Deadline(wait time.Duration) time.Time {
	return time.Now().Add(wait)
}

// Park blocks on real timers instead of the injected clock.
func Park() {
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
	t := time.NewTimer(time.Second)
	t.Stop()
}

// Age measures elapsed wall time.
func Age(start time.Time) time.Duration {
	return time.Since(start)
}
