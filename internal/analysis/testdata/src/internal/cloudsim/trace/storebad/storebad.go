// Package storebad runs a trace store's publish path the slow way:
// the sampling decision formats its rule key per request, recording
// binds fields through a per-call map literal, and the tick-driven
// flush formats segment names while folding. hotpath must flag every
// site it can reach from Record, Decide, and Flush.
package storebad

import "fmt"

// Store is a sketch of the columnar trace store: the shapes matter to
// the analyzer, not the storage.
type Store struct {
	rules   map[string]float64
	pending []string
	rows    []string
}

// Decide formats the rule-lookup key on every sampling decision — the
// exact allocation interned rule indices exist to remove.
func (s *Store) Decide(service, op string) bool {
	key := fmt.Sprintf("%s/%s", service, op) // flagged: per-decision format
	return s.rules[key] > 0
}

// Record stages a trace through a per-call map literal and a
// same-package helper that formats.
func (s *Store) Record(name string) {
	fields := map[string]string{"name": name} // flagged: per-record map literal
	s.pending = append(s.pending, fields["name"])
	stage(s, name)
}

// stage is a same-package callee of Record: its formatting runs per
// recorded trace just the same, so the fixpoint must reach it.
func stage(s *Store, name string) {
	s.pending = append(s.pending, fmt.Sprint("staged:", name)) // flagged: reached from Record
}

// Flush folds staged traces at the clock tick, formatting each row.
func (s *Store) Flush() {
	for _, p := range s.pending {
		s.rows = append(s.rows, fmt.Sprintf("row(%s)", p)) // flagged: per-fold format
	}
	s.pending = s.pending[:0]
}

// Render is an analytics read, off the publish path; hotpath must stay
// silent here even in a package that defines Record and Flush.
func (s *Store) Render() string {
	return fmt.Sprintf("%d rows", len(s.rows))
}
