// Package storegood runs a trace store's publish path the fast way:
// rule keys and segment names are interned into tables built with make
// (allowed: the allocation happens once, not per call), deciding is a
// map read, recording is a pointer append, and the fold resolves
// interned handles. Analytics reads format freely off-path. hotpath
// must stay silent.
package storegood

import "fmt"

// Store interns names on first sight; the publish path is appends and
// integer handles.
type Store struct {
	rules   map[string]float64
	ids     map[string]int
	names   []string
	pending []string
	rows    []int
}

// NewStore builds the interning tables up front.
func NewStore() *Store {
	return &Store{
		rules: make(map[string]float64),
		ids:   make(map[string]int),
	}
}

// Decide is a concatenation-free rule lookup: service and op index a
// nested read, no per-decision string is minted.
func (s *Store) Decide(service, op string) bool {
	return s.rules[service+"/"+op] > 0
}

// Record stages a trace with a single append.
func (s *Store) Record(name string) {
	s.pending = append(s.pending, name)
}

// Flush folds staged traces through the interning table, minting a
// name only on first sight.
func (s *Store) Flush() {
	for _, p := range s.pending {
		id, ok := s.ids[p]
		if !ok {
			id = len(s.names)
			s.names = append(s.names, p)
			s.ids[p] = id
		}
		s.rows = append(s.rows, id)
	}
	s.pending = s.pending[:0]
}

// Render is an analytics read — dashboards, dumps — not reachable from
// the publish path, so formatting here is fine.
func (s *Store) Render() string {
	return fmt.Sprintf("%d rows, %d names", len(s.rows), len(s.names))
}
