// Package mapbad leaks Go's randomized map iteration order into
// observable output three ways: printing directly from the range body,
// delegating to a same-package helper that emits, and invoking an
// emitting closure per iteration. maporder must flag all three ranges.
package mapbad

import "fmt"

// Render prints one line per entry straight from the map range — the
// classic nondeterministic dump.
func Render(stats map[string]int) {
	for k, v := range stats { // flagged: direct sink in the body
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Report delegates the emission to a helper; the order still leaks,
// one hop removed.
func Report(stats map[string]int) {
	for k := range stats { // flagged: helper emits
		emit(k)
	}
}

// emit is the helper the substrate's Emits fact must see through.
func emit(k string) {
	fmt.Println(k)
}

// Closure wraps the emission in a per-iteration literal.
func Closure(stats map[string]int) {
	for k := range stats { // flagged: closure in the body emits
		func() { fmt.Println(k) }()
	}
}
