// Package randbad draws from the process-global math/rand source in
// simulator-scoped code; every draw must be flagged by globalrand.
package randbad

import "math/rand"

// Jitter draws an unseeded latency perturbation.
func Jitter() float64 {
	return rand.Float64()
}

// Pick chooses an unseeded index.
func Pick(n int) int {
	return rand.Intn(n)
}
