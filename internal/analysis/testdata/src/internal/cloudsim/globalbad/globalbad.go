// Package globalbad keeps mutable state at package level — a counter
// that is assigned, a cache written through an index, and a mutex whose
// address the lock call takes. Two account shards in one process would
// alias every one of them, so globalstate must flag all three.
package globalbad

import "sync"

// calls is process-global request accounting; shards would double-count
// through it.
var calls int // flagged: assigned at runtime

// cache is a process-global memo table; one shard's entries would leak
// into another's.
var cache = map[string]string{} // flagged: written through an index

// mu is process-global synchronization; locking it serializes shards
// that should not even share it.
var mu sync.Mutex // flagged: pointer-receiver Lock aliases it

// Touch exercises all three variables.
func Touch(k, v string) {
	mu.Lock()
	defer mu.Unlock()
	calls++
	cache[k] = v
}
