// Package spanbad exports a simulated-service method that accepts a
// *sim.Context but never opens a span; spanhygiene must flag it.
package spanbad

import "repro/internal/cloudsim/sim"

// Service is a simulated service with a trace coverage gap.
type Service struct{}

// Get advances the timeline but records no span, so the hop is
// invisible to per-request cost attribution.
func (s *Service) Get(ctx *sim.Context, key string) string {
	ctx.Advance(0)
	return key
}
