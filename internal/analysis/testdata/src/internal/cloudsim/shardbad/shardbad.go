// Package shardbad mutates shared struct fields from all three
// concurrency seams without a guard: a plane interceptor bumps a
// counter per published call, a clock OnTick hook resets it at every
// timeline move, and a Batch staging buffer appends with no lock.
// shardsafe must flag every write.
package shardbad

import (
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/plane"
)

// collector is shared between the interceptor (per call) and the tick
// hook (per timeline move) — exactly the aliasing a mutex exists for.
type collector struct {
	calls int
}

// PlaneInterceptor counts calls on the shared collector with no lock.
func PlaneInterceptor(c *collector) plane.Interceptor {
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			c.calls++ // flagged: unguarded write from an interceptor
			return next(req)
		}
	}
}

// Wire resets the same counter from a tick hook — the other side of
// the race.
func Wire(clk *clock.Virtual, c *collector) {
	clk.OnTick(func(time.Time) {
		c.calls = 0 // flagged: unguarded write from an OnTick hook
	})
}

// Batch stages values the way the telemetry planes do, but with no
// mutex between the publishing writers and the tick-driven drain.
type Batch struct {
	buf []int
	n   int
}

// Add is in Batch's method set, so it runs on the publisher side of
// the seam; both writes race the drain.
func (b *Batch) Add(v int) {
	b.buf = append(b.buf, v) // flagged: unguarded append to the staging buffer
	b.n++                    // flagged: unguarded counter bump
}
