// Package shardgood does the same seam-side mutation as shardbad but
// guarded: the interceptor takes the struct's mutex before writing,
// the Batch drain splits into a locking entry point and a *Locked
// helper whose caller holds the lock, and body-local state needs no
// guard at all. shardsafe must stay silent on every function here.
package shardgood

import (
	"sync"

	"repro/internal/cloudsim/plane"
)

// collector guards its counter with its own mutex.
type collector struct {
	mu    sync.Mutex
	calls int
}

// PlaneInterceptor locks before the write — guarded, so silent.
func PlaneInterceptor(c *collector) plane.Interceptor {
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			c.mu.Lock()
			c.calls++ // silent: the body holds the mutex
			c.mu.Unlock()
			return next(req)
		}
	}
}

// Batch stages values under a mutex, draining through a *Locked helper.
type Batch struct {
	mu  sync.Mutex
	buf []int
}

// Add locks, then delegates to the *Locked helper.
func (b *Batch) Add(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.appendLocked(v)
}

// appendLocked mutates with the lock held by its caller — the naming
// convention shardsafe honors.
func (b *Batch) appendLocked(v int) {
	b.buf = append(b.buf, v) // silent: *Locked means the caller holds b.mu
}

// Snapshot copies into a body-local aggregate; locals are shard-private
// by construction, so writing their fields needs no guard.
func (b *Batch) Snapshot() int {
	type agg struct{ n int }
	var a agg
	b.mu.Lock()
	defer b.mu.Unlock()
	for range b.buf {
		a.n++ // silent: a is local to this body
	}
	return a.n
}
