// Package globalgood keeps its state where the fleet engine needs it:
// on a service struct a Cloud would own per shard. The only
// package-level variables are genuinely immutable — an error sentinel,
// a read-only table, a compiled regexp — which globalstate must leave
// alone.
package globalgood

import (
	"errors"
	"regexp"
	"sync"
)

// ErrBusy is an error sentinel: assigned once at initialization, only
// ever compared afterwards.
var ErrBusy = errors.New("globalgood: busy")

// hopNames is a read-only lookup table.
var hopNames = []string{"edge", "core", "origin"}

// keyRE is a compiled pattern; the variable itself (a pointer) is never
// reassigned, and method calls on it do not alias the variable.
var keyRE = regexp.MustCompile(`^[a-z]+$`)

// Service owns the mutable state — per-shard, not per-process.
type Service struct {
	mu    sync.Mutex
	calls int
	cache map[string]string
}

// Touch mutates only receiver state.
func (s *Service) Touch(k, v string) error {
	if !keyRE.MatchString(k) {
		return ErrBusy
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.cache == nil {
		s.cache = make(map[string]string)
	}
	s.cache[k] = v
	_ = hopNames[0]
	return nil
}
