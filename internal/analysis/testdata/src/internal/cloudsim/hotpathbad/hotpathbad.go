// Package hotpathbad publishes telemetry from a plane interceptor the
// slow way: formatting the series name with fmt.Sprintf on every call
// and binding fields through a per-call map literal, both directly in
// the interceptor body and through a same-package helper. hotpath must
// flag every formatting site and literal map it can reach.
package hotpathbad

import (
	"fmt"

	"repro/internal/cloudsim/plane"
)

// sink swallows what the fake publishers produce.
var sink []string

// PlaneInterceptor publishes a formatted sample per call — the exact
// pattern interning exists to remove.
func PlaneInterceptor() plane.Interceptor {
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			err := next(req)
			ns := fmt.Sprintf("%s/%s", req.Call.Service, req.Call.Op) // flagged: per-call format
			fields := map[string]string{"ns": ns}                     // flagged: per-call map literal
			sink = append(sink, fields["ns"])
			publish(req)
			return err
		}
	}
}

// publish is a same-package callee of the interceptor: its formatting
// runs per call just the same, so the fixpoint must reach it.
func publish(req *plane.Request) {
	sink = append(sink, fmt.Sprint(req.Call.Service, ":", req.Call.Op)) // flagged: reached from interceptor
}

// Render formats outside the interceptor's reach; hotpath must stay
// silent here even in a package that defines a PlaneInterceptor.
func Render(service, op string) string {
	return fmt.Sprintf("%s/%s", service, op)
}
