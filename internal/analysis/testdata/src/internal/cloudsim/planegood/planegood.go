// Package planegood exports simulated-service methods that route their
// calls through the request plane, directly and through an unexported
// helper; planeroute must stay silent.
package planegood

import (
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
)

// Service is a simulated service on the request plane.
type Service struct {
	pl *plane.Plane
}

// Get routes through the plane directly.
func (s *Service) Get(ctx *sim.Context, key string) error {
	return s.pl.Do(ctx, &plane.Call{Service: "planegood", Op: "Get"}, func(*plane.Request) error {
		return nil
	})
}

// Put reaches the plane through an unexported helper, the delegation
// pattern kms and dynamo use.
func (s *Service) Put(ctx *sim.Context, key string) error {
	return s.do(ctx, "Put")
}

// do is the shared routing helper.
func (s *Service) do(ctx *sim.Context, op string) error {
	return s.pl.Do(ctx, &plane.Call{Service: "planegood", Op: op}, func(*plane.Request) error {
		return nil
	})
}
