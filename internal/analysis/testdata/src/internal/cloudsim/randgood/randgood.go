// Package randgood draws randomness only from an injected seeded
// *rand.Rand; the globalrand analyzer must stay silent.
package randgood

import "math/rand"

// NewRng builds the seeded generator a simulator injects.
func NewRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Jitter draws from the injected generator.
func Jitter(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Pick chooses an index reproducibly.
func Pick(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}
