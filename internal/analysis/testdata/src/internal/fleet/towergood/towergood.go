// Package towergood publishes fleet control-tower rollups the fast
// way: namespace strings are interned once per (service, op) into a
// map built with make, and per-account work is appends and integer
// indices. hotpath's fleet seam must stay silent.
package towergood

import "fmt"

// Tower interns namespace strings on first sight; steady-state
// observation is two map reads and an append.
type Tower struct {
	byService map[string]map[string]string
	rows      []string
}

// NewTower builds the interning tables with make (allowed: the
// allocation happens once, not per account).
func NewTower() *Tower {
	return &Tower{byService: make(map[string]map[string]string)}
}

// ObserveAccount resolves the interned name, minting it only on first
// sight with plain concatenation.
func (t *Tower) ObserveAccount(service, op string, requests int) {
	ops := t.byService[service]
	if ops == nil {
		ops = make(map[string]string)
		t.byService[service] = ops
	}
	ns := ops[op]
	if ns == "" {
		ns = "fleet/" + service + "/" + op
		ops[op] = ns
	}
	t.rows = append(t.rows, ns)
}

// RenderDashboard formats for humans — once, after the run — and is
// not reachable from the Observe hooks, so formatting here is fine.
func (t *Tower) RenderDashboard() string {
	return fmt.Sprintf("%d rows", len(t.rows))
}
