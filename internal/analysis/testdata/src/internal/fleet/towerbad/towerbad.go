// Package towerbad publishes fleet control-tower rollups the slow way:
// the per-account Observe hook formats series names with fmt.Sprintf
// and binds rows through a per-call map literal, both directly in the
// hook body and through a same-package helper. hotpath's fleet seam
// must flag every formatting site and literal map it can reach.
package towerbad

import "fmt"

// Tower collects per-account rollups; its Observe hooks run once per
// simulated account, inside the benchmark-timed shard workers.
type Tower struct {
	rows []string
}

// ObserveAccount is the per-account publish hook — formatting here
// runs per account, the exact pattern interning exists to remove.
func (t *Tower) ObserveAccount(service, op string, requests int) {
	ns := fmt.Sprintf("fleet/%s/%s", service, op) // flagged: per-account format
	labels := map[string]string{"ns": ns}         // flagged: per-account map literal
	t.rows = append(t.rows, labels["ns"])
	t.note(service, op)
}

// note is a same-package callee of the hook: its formatting runs per
// account just the same, so the fixpoint must reach it.
func (t *Tower) note(service, op string) {
	t.rows = append(t.rows, fmt.Sprint(service, ":", op)) // flagged: reached from Observe hook
}

// RenderDashboard formats outside the Observe hooks' reach; hotpath
// must stay silent here even in a package that defines Observe hooks.
func (t *Tower) RenderDashboard() string {
	return fmt.Sprintf("%d rows", len(t.rows))
}
