// Package shardfleetgood runs the same shard fan-out as shardfleetbad
// but with the fleet engine's two legitimate patterns: each worker
// writes only the result slot its shard owns (slice-element writes to
// owned slots are not shared-field mutation), and cross-shard
// aggregation goes through a mutex with a *Locked helper. shardsafe
// must stay silent on every function here.
package shardfleetgood

import "sync"

// tally guards its cross-shard counter with its own mutex.
type tally struct {
	mu       sync.Mutex
	requests int
}

// RunShards fans shards out to workers; per-shard results land in
// owned slots, the shared tally is updated under the lock.
func RunShards(shards [][]int) ([]int, *tally) {
	t := &tally{}
	out := make([]int, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = len(shards[i]) // silent: each worker owns its slot
			t.mu.Lock()
			t.addLocked(len(shards[i]))
			t.mu.Unlock()
		}(i)
	}
	wg.Wait()
	return out, t
}

// addLocked mutates with the lock held by its caller — the naming
// convention shardsafe honors.
func (t *tally) addLocked(n int) {
	t.requests += n // silent: *Locked means the caller holds t.mu
}
