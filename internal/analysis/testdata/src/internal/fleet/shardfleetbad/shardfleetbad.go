// Package shardfleetbad mutates state shared across fleet shard
// workers without a guard: the scheduler spawns worker goroutines and
// each one bumps counters on a tally every worker can see — directly
// in the goroutine body and through an in-package helper. shardsafe
// must flag both writes.
package shardfleetbad

import "sync"

// tally aggregates across shards; every worker aliases it.
type tally struct {
	requests int
	errs     int
}

// RunShards fans shards out to worker goroutines, fleet-style, but
// lets the workers race on the shared tally.
func RunShards(shards [][]int) *tally {
	t := &tally{}
	var wg sync.WaitGroup
	for _, shard := range shards {
		wg.Add(1)
		go func(shard []int) {
			defer wg.Done()
			t.requests += len(shard) // flagged: unguarded write from a shard worker
			t.note(len(shard))
		}(shard)
	}
	wg.Wait()
	return t
}

// note is reachable (same package) from the worker goroutine, so its
// unguarded write is on the seam too.
func (t *tally) note(n int) {
	if n == 0 {
		t.errs++ // flagged: unguarded write reachable from a shard worker
	}
}
