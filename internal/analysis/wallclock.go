package analysis

import "go/types"

// simScopes are the module subtrees that must stay on the injected
// virtual timeline: the service simulators, the applications driven
// through them, and the workload generators.
var simScopes = []string{"internal/cloudsim", "internal/apps", "internal/workload", "internal/fleet"}

// inSimScope reports whether pkgPath is simulator/app/workload code.
func inSimScope(pkgPath string) bool {
	for _, s := range simScopes {
		if pathWithin(pkgPath, s) {
			return true
		}
	}
	return false
}

// wallclockForbidden are the time-package functions that read or wait
// on the process wall clock. Types (time.Time, time.Duration) and pure
// constructors (time.Date, time.Unix) remain fine.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// WallClock flags wall-clock reads in simulator, app, and workload
// code. Everything outside internal/cloudsim/clock must take time from
// an injected clock.Clock so a month of billing or a 20-second long
// poll replays identically on a virtual timeline.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "simulator/app/workload code must read time through clock.Clock, never the time package's wall clock",
	Run:  runWallClock,
}

func runWallClock(p *Pass) {
	path := p.Pkg.Path
	if !inSimScope(path) || pathWithin(path, "internal/cloudsim/clock") {
		return
	}
	for ident, obj := range p.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			continue // methods on time.Time/Timer values are fine
		}
		if wallclockForbidden[fn.Name()] {
			p.Reportf(ident.Pos(),
				"time.%s reads the wall clock; take time from the injected clock.Clock (or clock.After) so virtual-timeline replay stays deterministic",
				fn.Name())
		}
	}
}
