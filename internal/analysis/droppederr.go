package analysis

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags `_ =` discards of error-returning calls in the
// cloud simulator. A simulated service swallowing an error is how a
// billing or IAM bug hides: the meter under-counts and every table
// downstream is silently wrong.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "internal/cloudsim must not discard errors with `_ =`; handle them or justify the discard in the allowlist",
	Run:  runDroppedErr,
}

func runDroppedErr(p *Pass) {
	if !pathWithin(p.Pkg.Path, "internal/cloudsim") {
		return
	}
	info := p.Pkg.Info
	errorType := types.Universe.Lookup("error").Type()
	isError := func(t types.Type) bool { return t != nil && types.Identical(t, errorType) }

	walkFiles(p, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Multi-value form: v, _ := f()
		if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
			call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			tup, ok := info.Types[call].Type.(*types.Tuple)
			if !ok || tup.Len() != len(assign.Lhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				if isBlank(lhs) && isError(tup.At(i).Type()) {
					p.Reportf(lhs.Pos(),
						"error result of %s is discarded with _; handle it or allowlist the discard with a justification",
						types.ExprString(call.Fun))
				}
			}
			return true
		}
		// Pairwise form: _ = f()
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) || !isBlank(lhs) {
				continue
			}
			call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if tv, ok := info.Types[call]; ok && isError(tv.Type) {
				p.Reportf(lhs.Pos(),
					"error result of %s is discarded with _; handle it or allowlist the discard with a justification",
					types.ExprString(call.Fun))
			}
		}
		return true
	})
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
