package analysis

import "go/types"

// globalrandAllowed are the math/rand package-level functions that do
// not touch the global source: they build the injected, seeded
// generators the simulator requires.
var globalrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// GlobalRand flags draws from the process-global math/rand source in
// simulator, app, and workload code. The global source is seeded from
// runtime entropy, so any use makes latency samples and workload
// arrivals unreproducible; randomness must come from an injected
// *rand.Rand built with rand.New(rand.NewSource(seed)).
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "simulator/app/workload randomness must come from an injected seeded *rand.Rand, never math/rand's global source",
	Run:  runGlobalRand,
}

func runGlobalRand(p *Pass) {
	if !inSimScope(p.Pkg.Path) {
		return
	}
	for ident, obj := range p.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		pkgPath := fn.Pkg().Path()
		if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
			continue
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			continue // methods on an injected *rand.Rand are the goal
		}
		if globalrandAllowed[fn.Name()] {
			continue
		}
		p.Reportf(ident.Pos(),
			"rand.%s draws from the process-global source; draw from an injected seeded *rand.Rand so runs are reproducible",
			fn.Name())
	}
}
