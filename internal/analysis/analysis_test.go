package analysis

import (
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// fixtureProgram loads every fixture package once; the loader
// type-checks the standard library from source, so tests share the
// result.
var (
	fixtureOnce sync.Once
	fixtureProg *Program
	fixtureErr  error
	moduleRoot  string
)

// fixtureDirs are the fixture packages relative to testdata/src. The
// bad/good pairing per analyzer lives in goldenCases.
var fixtureDirs = []string{
	"internal/cloudsim/wallbad",
	"internal/cloudsim/wallgood",
	"internal/cloudsim/randbad",
	"internal/cloudsim/randgood",
	"internal/cloudsim/spanbad",
	"internal/cloudsim/spangood",
	"internal/cloudsim/planebad",
	"internal/cloudsim/planegood",
	"internal/cloudsim/metricbad",
	"internal/cloudsim/metricgood",
	"internal/cloudsim/loggroupbad",
	"internal/cloudsim/loggroupgood",
	"internal/cloudsim/hotpathbad",
	"internal/cloudsim/hotpathgood",
	"internal/cloudsim/trace/storebad",
	"internal/cloudsim/trace/storegood",
	"internal/cloudsim/errbad",
	"internal/cloudsim/errgood",
	"internal/cloudsim/mapbad",
	"internal/cloudsim/mapgood",
	"internal/cloudsim/globalbad",
	"internal/cloudsim/globalgood",
	"internal/cloudsim/shardbad",
	"internal/cloudsim/shardgood",
	"internal/fleet/shardfleetbad",
	"internal/fleet/shardfleetgood",
	"internal/fleet/towerbad",
	"internal/fleet/towergood",
	"moneybad",
	"moneygood",
	"graphfix",
}

func loadFixtures(t *testing.T) *Program {
	t.Helper()
	fixtureOnce.Do(func() {
		moduleRoot, fixtureErr = FindModuleRoot(".")
		if fixtureErr != nil {
			return
		}
		var patterns []string
		for _, d := range fixtureDirs {
			patterns = append(patterns, filepath.Join(moduleRoot, "internal/analysis/testdata/src", d))
		}
		fixtureProg, fixtureErr = Load(moduleRoot, patterns)
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixtures: %v", fixtureErr)
	}
	return fixtureProg
}

// subProgram narrows prog to the packages whose paths end in one of the
// given fixture suffixes.
func subProgram(prog *Program, suffixes ...string) *Program {
	sub := &Program{Fset: prog.Fset, Root: prog.Root, Module: prog.Module}
	for _, pkg := range prog.Pkgs {
		for _, s := range suffixes {
			if strings.HasSuffix(pkg.Path, "/"+s) {
				sub.Pkgs = append(sub.Pkgs, pkg)
			}
		}
	}
	return sub
}

var goldenCases = []struct {
	analyzer *Analyzer
	bad      string // fixture with findings
	good     string // fixture that must stay silent
	golden   string // golden file basename; analyzer name if empty
}{
	{WallClock, "internal/cloudsim/wallbad", "internal/cloudsim/wallgood", ""},
	{GlobalRand, "internal/cloudsim/randbad", "internal/cloudsim/randgood", ""},
	{MoneyFloat, "moneybad", "moneygood", ""},
	{SpanHygiene, "internal/cloudsim/spanbad", "internal/cloudsim/spangood", ""},
	{PlaneRoute, "internal/cloudsim/planebad", "internal/cloudsim/planegood", ""},
	{MetricName, "internal/cloudsim/metricbad", "internal/cloudsim/metricgood", ""},
	{LogGroup, "internal/cloudsim/loggroupbad", "internal/cloudsim/loggroupgood", ""},
	{HotPath, "internal/cloudsim/hotpathbad", "internal/cloudsim/hotpathgood", ""},
	{DroppedErr, "internal/cloudsim/errbad", "internal/cloudsim/errgood", ""},
	{MapOrder, "internal/cloudsim/mapbad", "internal/cloudsim/mapgood", ""},
	{GlobalState, "internal/cloudsim/globalbad", "internal/cloudsim/globalgood", ""},
	{ShardSafe, "internal/cloudsim/shardbad", "internal/cloudsim/shardgood", ""},
	// The same analyzer again over the fleet scheduler seam: shard
	// worker goroutines as reachability roots. A distinct golden name
	// keeps it from colliding with the cloudsim shardsafe golden.
	{ShardSafe, "internal/fleet/shardfleetbad", "internal/fleet/shardfleetgood", "shardfleet"},
	// hotpath again over the fleet control tower's publish seam: the
	// telemetry Observe hooks as reachability roots.
	{HotPath, "internal/fleet/towerbad", "internal/fleet/towergood", "hotpathfleet"},
	// hotpath a third time over the trace store's publish seam:
	// Record/Decide/Flush as reachability roots.
	{HotPath, "internal/cloudsim/trace/storebad", "internal/cloudsim/trace/storegood", "hotpathtrace"},
}

// TestGolden runs each analyzer over its positive and negative fixture
// packages and compares the rendered findings against the golden file.
// The negative fixture is loaded in the same pass, so the golden file
// containing no line from it is the negative assertion.
func TestGolden(t *testing.T) {
	prog := loadFixtures(t)
	for _, tc := range goldenCases {
		golden := tc.golden
		if golden == "" {
			golden = tc.analyzer.Name
		}
		t.Run(golden, func(t *testing.T) {
			sub := subProgram(prog, tc.bad, tc.good)
			if len(sub.Pkgs) != 2 {
				t.Fatalf("want 2 fixture packages, loaded %d", len(sub.Pkgs))
			}
			findings := Run(sub, []*Analyzer{tc.analyzer})

			var badHits, goodHits int
			var sb strings.Builder
			for _, f := range findings {
				if strings.Contains(f.Pos.Filename, tc.bad) {
					badHits++
				}
				if strings.Contains(f.Pos.Filename, tc.good) {
					goodHits++
				}
				sb.WriteString(f.Rel(moduleRoot))
				sb.WriteString("\n")
			}
			if badHits == 0 {
				t.Errorf("positive fixture %s produced no %s findings", tc.bad, tc.analyzer.Name)
			}
			if goodHits != 0 {
				t.Errorf("negative fixture %s produced %d %s findings", tc.good, goodHits, tc.analyzer.Name)
			}

			goldenPath := filepath.Join(moduleRoot, "internal/analysis/testdata/golden", golden+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/analysis -update`): %v", err)
			}
			if got := sb.String(); got != string(want) {
				t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestRepoIsClean is `diylint ./...` as a test: the tree itself must
// satisfy every invariant, modulo the justified entries in
// .diylint-allow, and no allowlist entry may be stale.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root, []string{filepath.Join(root, "...")})
	if err != nil {
		t.Fatal(err)
	}
	var entries []*AllowEntry
	if allowPath := filepath.Join(root, ".diylint-allow"); fileExists(allowPath) {
		entries, err = ParseAllowFile(allowPath)
		if err != nil {
			t.Fatal(err)
		}
	}
	findings := Run(prog, Analyzers())
	kept, stale := Filter(findings, entries, root)
	for _, f := range kept {
		t.Errorf("unallowed finding: %s", f.Rel(root))
	}
	for _, e := range stale {
		t.Errorf("stale allowlist entry: %s %s # %s", e.Analyzer, e.File, e.Justification)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// TestFixturesExcludedFromGoTooling is diylint's self-check: every
// fixture package must live under a testdata directory (which the go
// tool — and so `go test ./...` — never descends into), and the
// driver's own recursive pattern expansion must skip them the same
// way, so fixtures are only ever analyzed when named explicitly.
func TestFixturesExcludedFromGoTooling(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fixtureDirs {
		dir := filepath.Join(root, "internal/analysis/testdata/src", d)
		if !hasGoFiles(dir) {
			t.Errorf("fixture %s has no Go files", d)
		}
		onTestdataPath := false
		for _, seg := range strings.Split(filepath.ToSlash(dir), "/") {
			if seg == "testdata" {
				onTestdataPath = true
			}
		}
		if !onTestdataPath {
			t.Errorf("fixture %s is not under a testdata directory; go test ./... would compile it", d)
		}
	}
	dirs, err := expandPatterns(root, []string{filepath.Join(root, "...")})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if strings.Contains(filepath.ToSlash(dir), "/testdata/") || strings.HasSuffix(dir, "/testdata") {
			t.Errorf("recursive expansion leaked a testdata package: %s", dir)
		}
	}
}

// TestExpandPatternsExplicitTestdata checks the flip side of the
// exclusion: naming a fixture directory explicitly must load it.
func TestExpandPatternsExplicitTestdata(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal/analysis/testdata/src/internal/cloudsim/wallbad")
	dirs, err := expandPatterns(root, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != dir {
		t.Fatalf("explicit fixture pattern expanded to %v, want [%s]", dirs, dir)
	}
}

func TestParseAllow(t *testing.T) {
	entries, err := parseAllow(`
# comment
wallclock internal/foo/bar.go # server deadlines are genuinely wall-clock
droppederr internal/foo/baz.go:42 # close on shutdown path, error is unactionable
`, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if entries[0].Analyzer != "wallclock" || entries[0].File != "internal/foo/bar.go" || entries[0].Line != 0 {
		t.Errorf("entry 0 parsed as %+v", entries[0])
	}
	if entries[1].Line != 42 || entries[1].Justification == "" {
		t.Errorf("entry 1 parsed as %+v", entries[1])
	}

	if _, err := parseAllow("wallclock internal/foo/bar.go\n", "test"); err == nil {
		t.Error("entry without justification must be rejected")
	}
	if _, err := parseAllow("wallclock internal/foo/bar.go #   \n", "test"); err == nil {
		t.Error("entry with blank justification must be rejected")
	}
	if _, err := parseAllow("nosuch internal/foo/bar.go # why\n", "test"); err == nil {
		t.Error("unknown analyzer must be rejected")
	}
	if _, err := parseAllow("wallclock internal/foo/bar.go:zero # why\n", "test"); err == nil {
		t.Error("bad line number must be rejected")
	}
}

func TestFilter(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	mk := func(file string, line int, analyzer string) Finding {
		return Finding{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: filepath.Join(root, file), Line: line},
		}
	}
	findings := []Finding{
		mk("a/a.go", 10, "wallclock"),
		mk("a/a.go", 20, "wallclock"),
		mk("b/b.go", 5, "droppederr"),
	}
	entries, err := parseAllow(`
wallclock a/a.go:10 # line-scoped
droppederr b/b.go # file-scoped
globalrand c/c.go # never matches
`, "test")
	if err != nil {
		t.Fatal(err)
	}
	kept, stale := Filter(findings, entries, root)
	if len(kept) != 1 || kept[0].Pos.Line != 20 {
		t.Errorf("kept = %v, want only the line-20 wallclock finding", kept)
	}
	if len(stale) != 1 || stale[0].Analyzer != "globalrand" {
		t.Errorf("stale = %v, want only the globalrand entry", stale)
	}
}

// TestFilterDrift pins the line-drift tolerance: a line-scoped entry
// whose exact line no longer matches binds to the nearest un-suppressed
// finding of the same analyzer in the same file — and only then. An
// entry for another analyzer or another file stays stale no matter how
// close its line is, and a second entry cannot ride the finding the
// first one already suppressed.
func TestFilterDrift(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	mk := func(file string, line int, analyzer string) Finding {
		return Finding{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: filepath.Join(root, file), Line: line},
		}
	}

	t.Run("binds to nearest same-analyzer finding", func(t *testing.T) {
		findings := []Finding{
			mk("a/a.go", 15, "globalstate"),
			mk("a/a.go", 40, "globalstate"),
		}
		entries, err := parseAllow("globalstate a/a.go:12 # drifted three lines\n", "test")
		if err != nil {
			t.Fatal(err)
		}
		kept, stale := Filter(findings, entries, root)
		if len(stale) != 0 {
			t.Errorf("stale = %v, want none: the entry should drift onto line 15", stale)
		}
		if len(kept) != 1 || kept[0].Pos.Line != 40 {
			t.Errorf("kept = %v, want only the line-40 finding (line 15 is nearest to 12)", kept)
		}
	})

	t.Run("wrong analyzer or file stays stale", func(t *testing.T) {
		findings := []Finding{mk("a/a.go", 15, "globalstate")}
		entries, err := parseAllow(`
shardsafe a/a.go:15 # same line, wrong analyzer
globalstate b/b.go:15 # same analyzer, wrong file
`, "test")
		if err != nil {
			t.Fatal(err)
		}
		kept, stale := Filter(findings, entries, root)
		if len(kept) != 1 {
			t.Errorf("kept = %v, want the finding kept: neither entry may bind to it", kept)
		}
		if len(stale) != 2 {
			t.Errorf("stale = %v, want both entries stale", stale)
		}
	})

	t.Run("one finding absorbs only one drifted entry", func(t *testing.T) {
		findings := []Finding{mk("a/a.go", 15, "globalstate")}
		entries, err := parseAllow(`
globalstate a/a.go:14 # binds first
globalstate a/a.go:16 # nothing left to bind to
`, "test")
		if err != nil {
			t.Fatal(err)
		}
		kept, stale := Filter(findings, entries, root)
		if len(kept) != 0 {
			t.Errorf("kept = %v, want the finding suppressed by the first entry", kept)
		}
		if len(stale) != 1 || stale[0].Line != 16 {
			t.Errorf("stale = %v, want only the line-16 entry", stale)
		}
	})
}

// TestAllowEntryTarget pins the rendering the stale-entry message uses.
func TestAllowEntryTarget(t *testing.T) {
	line := AllowEntry{Analyzer: "globalstate", File: "a/a.go", Line: 12}
	if got := line.Target(); got != "a/a.go:12" {
		t.Errorf("line-scoped Target() = %q, want %q", got, "a/a.go:12")
	}
	file := AllowEntry{Analyzer: "droppederr", File: "b/b.go"}
	if got := file.Target(); got != "b/b.go" {
		t.Errorf("file-scoped Target() = %q, want %q", got, "b/b.go")
	}
}
