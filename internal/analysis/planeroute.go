package analysis

import (
	"strings"
)

// PlaneRoute guards the request-plane unification: every exported
// cloudsim service method that accepts a *sim.Context must route the
// call through plane.Do — directly or via a same-package helper — so
// the fixed trace/auth/latency/meter pipeline cannot be bypassed by a
// service quietly reverting to a bespoke begin path. Deliberate
// exceptions (e.g. the lambda connection suspend/billing paths, whose
// accounting is per-connection rather than per-call) carry a
// .diylint-allow justification.
var PlaneRoute = &Analyzer{
	Name: "planeroute",
	Doc:  "exported cloudsim service methods taking *sim.Context must route calls through plane.Do",
	Run:  runPlaneRoute,
}

func runPlaneRoute(p *Pass) {
	path := p.Pkg.Path
	if !pathWithin(path, "internal/cloudsim") {
		return
	}
	// The plane is the pipeline itself, and the sim/trace substrate is
	// what the pipeline is built from; none of them route through Do.
	if strings.HasSuffix(path, "internal/cloudsim/sim") ||
		strings.HasSuffix(path, "internal/cloudsim/trace") ||
		strings.HasSuffix(path, "internal/cloudsim/plane") {
		return
	}

	// A node "routes" when one of its own call sites is plane.Do; the
	// substrate propagates routing through same-package delegation, so
	// wrappers like kms.do or dynamo.put count for their callers.
	routes := p.Facts.Graph.CanReach(p.Pkg, func(n *Node) bool {
		for _, cs := range n.Calls {
			callee := cs.Callee
			if callee == nil || callee.Pkg() == nil {
				continue
			}
			if callee.Name() == "Do" && strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/plane") {
				return true
			}
		}
		return false
	}, SamePackage)

	for _, n := range p.Facts.Graph.PkgNodes(p.Pkg) {
		if n.Fn == nil || routes[n] {
			continue
		}
		decl := n.Decl
		if decl.Recv == nil || !decl.Name.IsExported() {
			continue
		}
		if !hasSimContextParam(p.Pkg.Info, decl) {
			continue
		}
		p.Reportf(decl.Name.Pos(),
			"exported method %s accepts a *sim.Context but never routes through plane.Do; service calls must pass the request plane (trace, auth, latency, metering) or carry a .diylint-allow justification",
			n.Fn.Name())
	}
}
