package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PlaneRoute guards the request-plane unification: every exported
// cloudsim service method that accepts a *sim.Context must route the
// call through plane.Do — directly or via a same-package helper — so
// the fixed trace/auth/latency/meter pipeline cannot be bypassed by a
// service quietly reverting to a bespoke begin path. Deliberate
// exceptions (e.g. the lambda connection suspend/billing paths, whose
// accounting is per-connection rather than per-call) carry a
// .diylint-allow justification.
var PlaneRoute = &Analyzer{
	Name: "planeroute",
	Doc:  "exported cloudsim service methods taking *sim.Context must route calls through plane.Do",
	Run:  runPlaneRoute,
}

func runPlaneRoute(p *Pass) {
	path := p.Pkg.Path
	if !pathWithin(path, "internal/cloudsim") {
		return
	}
	// The plane is the pipeline itself, and the sim/trace substrate is
	// what the pipeline is built from; none of them route through Do.
	if strings.HasSuffix(path, "internal/cloudsim/sim") ||
		strings.HasSuffix(path, "internal/cloudsim/trace") ||
		strings.HasSuffix(path, "internal/cloudsim/plane") {
		return
	}

	type fnInfo struct {
		decl    *ast.FuncDecl
		routes  bool
		callees []*types.Func
	}
	infos := make(map[*types.Func]*fnInfo)
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: decl}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Pkg.Info, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				switch {
				case callee.Name() == "Do" && strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/plane"):
					fi.routes = true
				case callee.Pkg() == p.Pkg.Types:
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
			infos[obj] = fi
		}
	}

	// Propagate routing through same-package calls to a fixpoint, so
	// wrappers like kms.do or dynamo.put count for their callers.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.routes {
				continue
			}
			for _, c := range fi.callees {
				if ci, ok := infos[c]; ok && ci.routes {
					fi.routes = true
					changed = true
					break
				}
			}
		}
	}

	for obj, fi := range infos {
		decl := fi.decl
		if fi.routes || decl.Recv == nil || !decl.Name.IsExported() {
			continue
		}
		if !hasSimContextParam(p.Pkg.Info, decl) {
			continue
		}
		p.Reportf(decl.Name.Pos(),
			"exported method %s accepts a *sim.Context but never routes through plane.Do; service calls must pass the request plane (trace, auth, latency, metering) or carry a .diylint-allow justification",
			obj.Name())
	}
}
