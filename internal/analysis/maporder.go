package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder guards replay determinism against Go's randomized map
// iteration: the fleet engine's parallel event loop must produce
// bit-identical ledgers, log streams, and metric series on every run,
// and a `for k := range m` whose body can reach observable output —
// rendered text, a meter, a log event, a metric sample, a trace
// annotation — emits in a different order each run. Iterate
// sortedKeys(m) (internal/cloudsim/sortutil) instead. Folds that are
// order-insensitive (sums, counts, max, building another map or set)
// are naturally silent: the body never reaches an output sink.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "sim code must not range over a map where iteration order can reach observable output; sort the keys first",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !inSimScope(p.Pkg.Path) {
		return
	}
	for _, node := range p.Facts.Graph.PkgNodes(p.Pkg) {
		node := node
		inspectShallow(node.Body, func(n ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := p.Pkg.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if sink, ok := p.rangeBodyEmits(node, rng); ok {
				p.Reportf(rng.Pos(),
					"map iteration order reaches observable output (%s); range over sortedKeys(m) or make the fold order-insensitive so replay stays bit-identical",
					sink)
			}
		})
	}
}

// rangeBodyEmits reports whether the range body can reach an output
// sink: a direct sink call, or a call to a module function that emits
// (substrate Emits fact). Only call sites lexically inside the range
// body count; a nested literal declared in the body counts when its own
// node emits, since it runs (or escapes) once per iteration.
func (p *Pass) rangeBodyEmits(node *Node, rng *ast.RangeStmt) (string, bool) {
	within := func(pos ast.Node) bool {
		return pos.Pos() >= rng.Body.Pos() && pos.End() <= rng.Body.End()
	}
	for _, cs := range node.Calls {
		if !within(cs.Call) {
			continue
		}
		callee := cs.Callee
		if outputSink(callee) {
			return "calls " + calleeLabel(callee), true
		}
		if callee != nil {
			if target, ok := p.Facts.Graph.ByFn[callee]; ok && p.Facts.Emits[target] {
				return "calls " + calleeLabel(callee) + ", which emits", true
			}
		}
	}
	// Literals declared inside the body run (or escape) per iteration;
	// if one emits, order leaks through it.
	found := ""
	inspectShallow(rng.Body, func(n ast.Node) {
		if found != "" {
			return
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if ln, ok := p.Facts.Graph.ByLit[lit]; ok && p.Facts.Emits[ln] {
				found = "a closure in the body emits"
			}
		}
	})
	if found != "" {
		return found, true
	}
	return "", false
}

// calleeLabel renders a callee as pkg.Name for the finding message.
func calleeLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
