package analysis

import (
	"go/types"
	"testing"
)

// graphFacts computes substrate facts over just the graphfix fixture
// package and returns them with the package.
func graphFacts(t *testing.T) (*Facts, *Package) {
	t.Helper()
	prog := loadFixtures(t)
	sub := subProgram(prog, "graphfix")
	if len(sub.Pkgs) != 1 {
		t.Fatalf("want 1 graphfix package, loaded %d", len(sub.Pkgs))
	}
	return ComputeFacts(sub), sub.Pkgs[0]
}

// declNode finds the node for a declared function or method by receiver
// type name ("" for plain functions) and name.
func declNode(t *testing.T, facts *Facts, pkg *Package, recv, name string) *Node {
	t.Helper()
	for _, n := range facts.Graph.PkgNodes(pkg) {
		if n.Fn != nil && n.Fn.Name() == name && recvTypeName(n.Fn) == recv {
			return n
		}
	}
	t.Fatalf("no node for %s.%s in %s", recv, name, pkg.Path)
	return nil
}

// litNode finds the single literal node enclosed by the named
// declaration.
func litNode(t *testing.T, facts *Facts, pkg *Package, enclosing string) *Node {
	t.Helper()
	for _, n := range facts.Graph.PkgNodes(pkg) {
		if n.Lit != nil && n.Decl != nil && n.Decl.Name.Name == enclosing {
			return n
		}
	}
	t.Fatalf("no literal node enclosed by %s in %s", enclosing, pkg.Path)
	return nil
}

func hasCallee(from, to *Node) bool {
	for _, c := range from.Callees {
		if c == to {
			return true
		}
	}
	return false
}

// TestSubstrateCycle checks that mutually recursive functions get edges
// both ways and that the reachability fixpoint terminates on the cycle
// with both members in the set.
func TestSubstrateCycle(t *testing.T) {
	facts, pkg := graphFacts(t)
	ping := declNode(t, facts, pkg, "", "Ping")
	pong := declNode(t, facts, pkg, "", "Pong")
	if !hasCallee(ping, pong) || !hasCallee(pong, ping) {
		t.Errorf("cycle edges missing: Ping->Pong=%v Pong->Ping=%v", hasCallee(ping, pong), hasCallee(pong, ping))
	}
	reach := facts.Graph.Reachable([]*Node{ping}, SamePackage)
	if !reach[ping] || !reach[pong] {
		t.Errorf("reachability over the cycle: Ping=%v Pong=%v, want both true", reach[ping], reach[pong])
	}
}

// TestSubstrateMethodValue checks that binding a method to a value
// (f := t.M; f()) produces a reference edge to the method even though
// the call through f is unresolvable.
func TestSubstrateMethodValue(t *testing.T) {
	facts, pkg := graphFacts(t)
	use := declNode(t, facts, pkg, "", "UseMethodValue")
	m := declNode(t, facts, pkg, "T", "M")
	if !hasCallee(use, m) {
		t.Errorf("UseMethodValue has no reference edge to T.M; callees: %v", calleeNames(use))
	}
}

// TestSubstrateInterfaceDispatch checks the module-interface fallback:
// a call through Ringer fans out to every implementing method.
func TestSubstrateInterfaceDispatch(t *testing.T) {
	facts, pkg := graphFacts(t)
	ringAll := declNode(t, facts, pkg, "", "RingAll")
	bell := declNode(t, facts, pkg, "Bell", "Ring")
	gong := declNode(t, facts, pkg, "Gong", "Ring")
	if !hasCallee(ringAll, bell) || !hasCallee(ringAll, gong) {
		t.Errorf("dispatch fallback missing edges: ->Bell.Ring=%v ->Gong.Ring=%v; callees: %v",
			hasCallee(ringAll, bell), hasCallee(ringAll, gong), calleeNames(ringAll))
	}
}

// TestSubstrateLiteralNode checks that a function literal is its own
// node — named and attributed to its enclosing declaration — with an
// encloser edge in and its call edges out.
func TestSubstrateLiteralNode(t *testing.T) {
	facts, pkg := graphFacts(t)
	withLit := declNode(t, facts, pkg, "", "WithLit")
	lit := litNode(t, facts, pkg, "WithLit")
	if got := lit.Name(); got != "WithLit" {
		t.Errorf("literal node Name() = %q, want enclosing decl name %q", got, "WithLit")
	}
	if !hasCallee(withLit, lit) {
		t.Error("no encloser edge WithLit -> literal")
	}
	ping := declNode(t, facts, pkg, "", "Ping")
	if !hasCallee(lit, ping) {
		t.Errorf("literal has no call edge to Ping; callees: %v", calleeNames(lit))
	}
}

// TestSubstrateEmits checks the output-emission fixpoint: direct
// printers, their transitive callers, and emitting methods hold the
// fact; silent functions do not.
func TestSubstrateEmits(t *testing.T) {
	facts, pkg := graphFacts(t)
	for _, tc := range []struct {
		recv, name string
		want       bool
	}{
		{"", "Emit", true},
		{"", "CallsEmit", true},
		{"Gong", "Ring", true},
		{"", "RingAll", true}, // dispatch can land on Gong.Ring, which emits
		{"Bell", "Ring", false},
		{"", "Ping", false},
		{"", "Bump", false},
	} {
		n := declNode(t, facts, pkg, tc.recv, tc.name)
		if got := facts.Emits[n]; got != tc.want {
			t.Errorf("Emits[%s.%s] = %v, want %v", tc.recv, tc.name, got, tc.want)
		}
	}
}

// TestSubstrateVarFacts checks the package-variable indexes: a mutated
// variable is reported with a position, a read-only one is not.
func TestSubstrateVarFacts(t *testing.T) {
	facts, pkg := graphFacts(t)
	lookup := func(name string) *types.Var {
		t.Helper()
		v, ok := pkg.Types.Scope().Lookup(name).(*types.Var)
		if !ok {
			t.Fatalf("no package-level var %q in %s", name, pkg.Path)
		}
		return v
	}
	hits, reads := lookup("hits"), lookup("reads")
	if pos, ok := facts.VarMutated(hits); !ok || !pos.IsValid() {
		t.Errorf("VarMutated(hits) = (%v, %v), want a valid position", pos, ok)
	}
	if _, ok := facts.VarMutated(reads); ok {
		t.Error("VarMutated(reads) = true, want false: reads is only ever read")
	}
	if _, ok := facts.VarAddrTaken(reads); ok {
		t.Error("VarAddrTaken(reads) = true, want false")
	}
}

func calleeNames(n *Node) []string {
	var out []string
	for _, c := range n.Callees {
		out = append(out, c.Name())
	}
	return out
}
