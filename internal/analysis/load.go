package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package.
type Package struct {
	// Path is the full import path, e.g. "repro/internal/cloudsim/sqs".
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded set of target packages sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	// Root is the module root directory.
	Root string
	// Module is the module path from go.mod.
	Module string
	// Pkgs are the requested packages in deterministic (path) order.
	Pkgs []*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("analysis: no go.mod found in any parent directory")
		}
		dir = parent
	}
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", filepath.Join(root, "go.mod"))
}

// buildContext is the shared file-selection context. Cgo is disabled so
// the source importer type-checks the pure-Go variants of the standard
// library; this repo has no cgo code of its own.
var buildContextOnce sync.Once

func buildContext() *build.Context {
	buildContextOnce.Do(func() { build.Default.CgoEnabled = false })
	return &build.Default
}

// loader type-checks module packages on demand, delegating standard
// library imports to the compiler-independent "source" importer (the
// repo is offline: there is no export data and no x/tools).
type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(root, module string) *loader {
	buildContext() // disable cgo before the source importer snapshots file lists
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom routes module-internal paths to the module loader and
// everything else to the stdlib source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// dirFor maps a module import path to its directory.
func (l *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// loadPackage parses and type-checks one module package (and,
// transitively, its module dependencies).
func (l *loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	bp, err := buildContext().ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: %s does not type-check:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Load type-checks the packages matched by patterns under the module
// rooted at root. Patterns are directory paths relative to root (or
// absolute), with the usual "/..." suffix for recursive matching;
// recursive matches skip testdata, vendor, and hidden directories, so
// diylint's own fixture packages are only analyzed when named
// explicitly — mirroring how the go tool excludes them from
// `go test ./...`.
func Load(root string, patterns []string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}

	l := newLoader(root, module)
	prog := &Program{Fset: l.fset, Root: root, Module: module}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// expandPatterns resolves patterns to package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, filepath.FromSlash(pat))
		}
		st, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(dir) {
				add(dir)
			}
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
