package analysis

import (
	"path/filepath"
	"testing"
)

// benchFindings keeps the per-iteration result live so the compiler
// cannot elide the analysis.
var benchFindings []Finding

// BenchmarkDiylint runs the full twelve-analyzer suite — substrate pass
// included — over the repo's own tree. Loading and type-checking happen
// once outside the timer; the measured work is what grows as analyzers
// are added, so a substrate regression (an accidental per-analyzer
// re-walk, a quadratic fixpoint) shows up in the snapshot diff.
func BenchmarkDiylint(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Load(root, []string{filepath.Join(root, "...")})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchFindings = Run(prog, Analyzers())
	}
	if len(benchFindings) == 0 {
		b.Fatal("expected pre-allowlist findings from the repo tree")
	}
}
