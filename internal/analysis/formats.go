package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Machine-readable output for cmd/diylint's -format flag. JSON is the
// small shape scripts consume; SARIF 2.1.0 is the minimal subset GitHub
// code scanning ingests to render findings as PR annotations. Both
// carry file paths relative to the module root, slash-separated, so the
// output is machine-independent and diffable.

// jsonFinding is one finding in -format=json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// relPath renders a finding's filename relative to root,
// slash-separated.
func relPath(root, name string) string {
	if root != "" {
		if r, err := filepath.Rel(root, name); err == nil {
			name = r
		}
	}
	return filepath.ToSlash(name)
}

// WriteJSON renders findings as a JSON array (never null — a clean run
// is an empty array).
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 minimal shape.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with one rule per
// analyzer (every analyzer is listed, found or not, so the rule
// catalog is stable across runs).
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	driver := sarifDriver{Name: "diylint"}
	for _, a := range Analyzers() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       relPath(root, f.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
