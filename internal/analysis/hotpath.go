package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPath guards the telemetry publish paths' per-call cost: the
// benchmark budget (BENCH_cloudsim.json) only holds if publication
// stays on the interned/batched fast path. Two seams are rooted:
//
//   - In internal/cloudsim scopes, the body of any PlaneInterceptor —
//     and every same-package function it can reach — runs per
//     published call.
//   - In internal/cloudsim/trace, the store's publish path — Record,
//     Decide, and Flush, plus every same-package function they can
//     reach — runs per request (the sampling decision and the staged
//     append) or per clock tick (the columnar fold). Analytics reads
//     (Query, ServiceMap, rendering) are off-path and may format.
//
//   - In internal/fleet scopes, the control tower's Observe* hooks —
//     and every same-package function they can reach — run per
//     completed account (with its whole CloudWatch series reduction)
//     or per drained shard, inside the worker goroutines the fleet
//     benchmark times.
//
// Neither may format strings with fmt.Sprint* or allocate a map
// composite literal per call. Names and handles are interned once at
// construction or first sight; `make(map...)` for those interning
// tables is fine, it is the per-call formatting and literal maps that
// regress the hot path.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "PlaneInterceptor bodies, fleet-telemetry Observe hooks, and their same-package callees must not call fmt.Sprint* or build map literals; intern names and handles instead",
	Run:  runHotPath,
}

// sprintFuncs are the fmt formatters that allocate a string per call.
var sprintFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
}

func runHotPath(p *Pass) {
	// Each scope names its seam (for the diagnostic) and its root set.
	var seam string
	var isRoot func(*Node) bool
	switch {
	case pathWithin(p.Pkg.Path, "internal/cloudsim/trace"):
		// The trace seam must precede the general cloudsim one: the
		// store's publish path is rooted at its own hot entry points,
		// not at plane interceptors.
		seam = "the trace-store publish path"
		isRoot = func(n *Node) bool {
			if n.Fn == nil {
				return false
			}
			switch n.Fn.Name() {
			case "Record", "Decide", "Flush":
				return true
			}
			return false
		}
	case pathWithin(p.Pkg.Path, "internal/cloudsim"):
		seam = "PlaneInterceptor"
		isRoot = func(n *Node) bool { return n.Fn != nil && n.Fn.Name() == "PlaneInterceptor" }
	case pathWithin(p.Pkg.Path, "internal/fleet"):
		seam = "a fleet-telemetry Observe hook"
		isRoot = func(n *Node) bool { return n.Fn != nil && strings.HasPrefix(n.Fn.Name(), "Observe") }
	default:
		return
	}

	var roots []*Node
	for _, n := range p.Facts.Graph.PkgNodes(p.Pkg) {
		if isRoot(n) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}

	// Forward reachability from each root through same-package calls:
	// anything a root can reach runs (or can run) per published call.
	// Closures are their own substrate nodes but display under the
	// declaring function's name, so a violation inside a root's closure
	// still reads "via <root>".
	hot := p.Facts.Graph.Reachable(roots, SamePackage)

	for _, n := range p.Facts.Graph.PkgNodes(p.Pkg) {
		if !hot[n] {
			continue
		}
		for _, cs := range n.Calls {
			callee := cs.Callee
			if callee == nil || callee.Pkg() == nil {
				continue
			}
			if callee.Pkg().Path() == "fmt" && sprintFuncs[callee.Name()] {
				p.Reportf(cs.Call.Pos(),
					"fmt.%s formats a string on the telemetry hot path (reachable from %s via %s); intern names/handles at construction or append into a reused buffer instead",
					callee.Name(), seam, n.Name())
			}
		}
		// Map composite literals, in this node's own body only — nested
		// literals are separate hot nodes and report themselves.
		inspectShallow(n.Body, func(m ast.Node) {
			cl, ok := m.(*ast.CompositeLit)
			if !ok {
				return
			}
			tv, ok := p.Pkg.Info.Types[ast.Expr(cl)]
			if !ok || tv.Type == nil {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				p.Reportf(cl.Pos(),
					"map composite literal allocates on the telemetry hot path (reachable from %s via %s); intern names/handles at construction or append into a reused buffer instead",
					seam, n.Name())
			}
		})
	}
}

// inspectShallow visits body without descending into nested function
// literals (their substrate nodes own those bodies); the literal node
// itself is still visited.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		fn(n)
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}
