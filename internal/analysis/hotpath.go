package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath guards the telemetry interceptors' per-call cost: the
// benchmark budget (BENCH_cloudsim.json) only holds if publication
// stays on the interned/batched fast path, so the body of any
// PlaneInterceptor — and every same-package function it can reach —
// must not format strings with fmt.Sprint* or allocate a map composite
// literal per call. Names and handles are interned once at
// construction or first sight; `make(map...)` for those interning
// tables is fine, it is the per-call formatting and literal maps that
// regress the hot path.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "PlaneInterceptor bodies and their same-package callees must not call fmt.Sprint* or build map literals; intern names and handles instead",
	Run:  runHotPath,
}

// sprintFuncs are the fmt formatters that allocate a string per call.
var sprintFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
}

func runHotPath(p *Pass) {
	if !pathWithin(p.Pkg.Path, "internal/cloudsim") {
		return
	}

	type violation struct {
		pos  ast.Node
		what string
	}
	type fnInfo struct {
		callees    []*types.Func
		violations []violation
	}
	infos := make(map[*types.Func]*fnInfo)
	var roots []*types.Func
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			if decl.Name.Name == "PlaneInterceptor" {
				roots = append(roots, obj)
			}
			fi := &fnInfo{}
			// Function literals nested in the body (the interceptor
			// closure itself) are part of the declaring function here.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					callee := calleeFunc(p.Pkg.Info, n)
					if callee == nil || callee.Pkg() == nil {
						return true
					}
					switch {
					case callee.Pkg().Path() == "fmt" && sprintFuncs[callee.Name()]:
						fi.violations = append(fi.violations,
							violation{pos: n, what: "fmt." + callee.Name() + " formats a string"})
					case callee.Pkg() == p.Pkg.Types:
						fi.callees = append(fi.callees, callee)
					}
				case *ast.CompositeLit:
					tv, ok := p.Pkg.Info.Types[ast.Expr(n)]
					if ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							fi.violations = append(fi.violations,
								violation{pos: n, what: "map composite literal allocates"})
						}
					}
				}
				return true
			})
			infos[obj] = fi
		}
	}
	if len(roots) == 0 {
		return
	}

	// Forward reachability from each PlaneInterceptor through
	// same-package calls: anything the interceptor can reach runs (or
	// can run) per published call.
	hot := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if hot[fn] {
			continue
		}
		hot[fn] = true
		if fi, ok := infos[fn]; ok {
			work = append(work, fi.callees...)
		}
	}

	for fn, fi := range infos {
		if !hot[fn] {
			continue
		}
		for _, v := range fi.violations {
			p.Reportf(v.pos.Pos(),
				"%s on the telemetry hot path (reachable from PlaneInterceptor via %s); intern names/handles at construction or append into a reused buffer instead",
				v.what, fn.Name())
		}
	}
}
