package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// spanAPI are the sim.Context methods that open, close, or root spans.
// Reaching any of them (directly or through a same-package helper)
// counts as participating in tracing.
var spanAPI = map[string]bool{
	"StartSpan":  true,
	"FinishSpan": true,
	"PushSpan":   true,
	"StartTrace": true,
}

// SpanHygiene guards the trace coverage established by the distributed
// tracing work: every exported service method that accepts a
// *sim.Context must touch the span API — directly, through a
// same-package helper, by calling into the trace package, or by routing
// through the request plane (whose pipeline opens the span) — so
// per-request cost attribution cannot silently lose a hop.
var SpanHygiene = &Analyzer{
	Name: "spanhygiene",
	Doc:  "exported cloudsim methods taking *sim.Context must start/finish spans so trace coverage cannot regress",
	Run:  runSpanHygiene,
}

func runSpanHygiene(p *Pass) {
	path := p.Pkg.Path
	if !pathWithin(path, "internal/cloudsim") {
		return
	}
	// The tracing substrate itself defines the API, and the request
	// plane is the pipeline that wields it; neither has anything to
	// delegate to.
	if strings.HasSuffix(path, "internal/cloudsim/sim") ||
		strings.HasSuffix(path, "internal/cloudsim/trace") ||
		strings.HasSuffix(path, "internal/cloudsim/plane") {
		return
	}

	// A node "touches tracing" when one of its own call sites opens a
	// span, calls into the trace package, or routes through the request
	// plane (whose pipeline opens the span). The substrate's CanReach
	// propagates that through same-package delegation chains of any
	// depth — including closures, which are their own nodes with an edge
	// from the enclosing method.
	touches := p.Facts.Graph.CanReach(p.Pkg, func(n *Node) bool {
		for _, cs := range n.Calls {
			callee := cs.Callee
			if callee == nil || callee.Pkg() == nil {
				continue
			}
			callePath := callee.Pkg().Path()
			switch {
			case strings.HasSuffix(callePath, "internal/cloudsim/sim") && spanAPI[callee.Name()]:
				return true
			case strings.HasSuffix(callePath, "internal/cloudsim/trace"):
				return true
			case strings.HasSuffix(callePath, "internal/cloudsim/plane"):
				// plane.Do opens and closes the call's span.
				return true
			}
		}
		return false
	}, SamePackage)

	for _, n := range p.Facts.Graph.PkgNodes(p.Pkg) {
		if n.Fn == nil || touches[n] {
			continue
		}
		decl := n.Decl
		if decl.Recv == nil || !decl.Name.IsExported() {
			continue
		}
		if !hasSimContextParam(p.Pkg.Info, decl) {
			continue
		}
		p.Reportf(decl.Name.Pos(),
			"exported method %s accepts a *sim.Context but never touches the span API; open a span (ctx.StartSpan/PushSpan) or delegate to a helper that does, so trace coverage does not regress",
			n.Fn.Name())
	}
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil when it cannot be resolved statically.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hasSimContextParam reports whether decl declares a parameter of type
// *sim.Context (or sim.Context).
func hasSimContextParam(info *types.Info, decl *ast.FuncDecl) bool {
	for _, field := range decl.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil &&
			strings.HasSuffix(obj.Pkg().Path(), "internal/cloudsim/sim") {
			return true
		}
	}
	return false
}
