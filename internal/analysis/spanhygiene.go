package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// spanAPI are the sim.Context methods that open, close, or root spans.
// Reaching any of them (directly or through a same-package helper)
// counts as participating in tracing.
var spanAPI = map[string]bool{
	"StartSpan":  true,
	"FinishSpan": true,
	"PushSpan":   true,
	"StartTrace": true,
}

// SpanHygiene guards the trace coverage established by the distributed
// tracing work: every exported service method that accepts a
// *sim.Context must touch the span API — directly, through a
// same-package helper, by calling into the trace package, or by routing
// through the request plane (whose pipeline opens the span) — so
// per-request cost attribution cannot silently lose a hop.
var SpanHygiene = &Analyzer{
	Name: "spanhygiene",
	Doc:  "exported cloudsim methods taking *sim.Context must start/finish spans so trace coverage cannot regress",
	Run:  runSpanHygiene,
}

func runSpanHygiene(p *Pass) {
	path := p.Pkg.Path
	if !pathWithin(path, "internal/cloudsim") {
		return
	}
	// The tracing substrate itself defines the API, and the request
	// plane is the pipeline that wields it; neither has anything to
	// delegate to.
	if strings.HasSuffix(path, "internal/cloudsim/sim") ||
		strings.HasSuffix(path, "internal/cloudsim/trace") ||
		strings.HasSuffix(path, "internal/cloudsim/plane") {
		return
	}

	type fnInfo struct {
		decl    *ast.FuncDecl
		touches bool
		callees []*types.Func
	}
	infos := make(map[*types.Func]*fnInfo)
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: decl}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Pkg.Info, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				switch {
				case strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/sim") && spanAPI[callee.Name()]:
					fi.touches = true
				case strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/trace"):
					fi.touches = true
				case strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/plane"):
					// plane.Do opens and closes the call's span.
					fi.touches = true
				case callee.Pkg() == p.Pkg.Types:
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
			infos[obj] = fi
		}
	}

	// Propagate touching through same-package calls to a fixpoint, so
	// delegation chains of any depth count.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.touches {
				continue
			}
			for _, c := range fi.callees {
				if ci, ok := infos[c]; ok && ci.touches {
					fi.touches = true
					changed = true
					break
				}
			}
		}
	}

	for obj, fi := range infos {
		decl := fi.decl
		if fi.touches || decl.Recv == nil || !decl.Name.IsExported() {
			continue
		}
		if !hasSimContextParam(p.Pkg.Info, decl) {
			continue
		}
		p.Reportf(decl.Name.Pos(),
			"exported method %s accepts a *sim.Context but never touches the span API; open a span (ctx.StartSpan/PushSpan) or delegate to a helper that does, so trace coverage does not regress",
			obj.Name())
	}
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil when it cannot be resolved statically.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hasSimContextParam reports whether decl declares a parameter of type
// *sim.Context (or sim.Context).
func hasSimContextParam(info *types.Info, decl *ast.FuncDecl) bool {
	for _, field := range decl.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil &&
			strings.HasSuffix(obj.Pkg().Path(), "internal/cloudsim/sim") {
			return true
		}
	}
	return false
}
