package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName guards the metric-name registry (metrics/names.go): a
// typo'd series name silently splits one series into two and skews
// every windowed statistic, so names may only be minted in the metrics
// package and must be passed to the stats API by constant reference.
// The metrics package itself is exempt from the call-site rule — the
// registry is the one place allowed to treat names as data (it ranges
// over Names() to render the exposition).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric series names are registry constants: minted in internal/cloudsim/metrics, lowercase dot-separated, passed by constant reference",
	Run:  runMetricName,
}

// metricNameRE mirrors metrics.nameRE: lowercase dot-separated
// identifiers, each segment starting with a letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*)+$`)

const metricsPkgDir = "internal/cloudsim/metrics"

// metricArgMethods are the (*metrics.Service) methods whose second
// argument is a metric name.
var metricArgMethods = map[string]bool{
	"Record":     true,
	"Handle":     true,
	"Count":      true,
	"Sum":        true,
	"Max":        true,
	"Min":        true,
	"Avg":        true,
	"Percentile": true,
}

func runMetricName(p *Pass) {
	inRegistry := strings.HasSuffix(p.Pkg.Path, metricsPkgDir)

	// Rule 1: Metric*-prefixed string constants are the registry's
	// naming convention; minting one elsewhere invites unregistered
	// series, and a registry constant that is not lowercase
	// dot-separated breaks the exposition's name flattening.
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.CONST {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Metric") {
						continue
					}
					c, ok := p.Pkg.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					if !inRegistry {
						p.Reportf(name.Pos(),
							"constant %s mints a metric series name outside the registry; declare it in %s so the dashboard and alarms can see the series",
							name.Name, metricsPkgDir)
					}
					if val := constant.StringVal(c.Val()); !metricNameRE.MatchString(val) {
						p.Reportf(name.Pos(),
							"metric name constant %s = %q is not lowercase dot-separated identifiers; the exposition and alarm validation reject it",
							name.Name, val)
					}
				}
			}
		}
	}

	// Rule 2: the metric argument of every stats-API call resolves to a
	// constant declared in the registry package. Call sites come from
	// the substrate graph — already resolved once for every analyzer.
	if inRegistry {
		return
	}
	for _, node := range p.Facts.Graph.PkgNodes(p.Pkg) {
		for _, cs := range node.Calls {
			call, callee := cs.Call, cs.Callee
			if callee == nil || callee.Pkg() == nil ||
				!strings.HasSuffix(callee.Pkg().Path(), metricsPkgDir) ||
				!metricArgMethods[callee.Name()] || len(call.Args) < 2 {
				continue
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if metricArgIsRegistryConst(p.Pkg.Info, call.Args[1]) {
				continue
			}
			p.Reportf(call.Args[1].Pos(),
				"metric name passed to (*metrics.Service).%s is not a registry constant; use a Metric* constant from %s so the series cannot typo-split",
				callee.Name(), metricsPkgDir)
		}
	}
}

// metricArgIsRegistryConst reports whether expr resolves to a constant
// declared in the metrics package.
func metricArgIsRegistryConst(info *types.Info, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && strings.HasSuffix(c.Pkg().Path(), metricsPkgDir)
}
