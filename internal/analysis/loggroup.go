package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LogGroup guards the log-group registry (logs/names.go): a typo'd
// group name silently forks the evidence trail into a group no query
// or retention policy will ever look at, so group names may only be
// minted in the logs package and must reach the store API through a
// registry expression — a logs-package constant (LogGroupKMSAudit) or
// a logs-package deriver (PlaneGroup, LambdaGroup). The logs package
// itself is exempt from the call-site rule: the store is the one place
// allowed to treat group names as data (it ranges over them to render
// the inventory and the dump).
var LogGroup = &Analyzer{
	Name: "loggroup",
	Doc:  "log group names are registry expressions: minted in internal/cloudsim/logs, lowercase slash-separated, passed by constant or deriver call",
	Run:  runLogGroup,
}

// logGroupRE mirrors logs.groupRE: lowercase slash-separated segments,
// each starting with a letter.
var logGroupRE = regexp.MustCompile(`^[a-z][a-z0-9-]*(/[a-z][a-z0-9-]*)+$`)

const logsPkgDir = "internal/cloudsim/logs"

// logGroupArgMethods are the (*logs.Service) methods whose first
// argument is a group name.
var logGroupArgMethods = map[string]bool{
	"CreateGroup":   true,
	"SetRetention":  true,
	"Retention":     true,
	"PutEvents":     true,
	"SequenceToken": true,
	"Streams":       true,
	"Events":        true,
	"Tail":          true,
	"Query":         true,
}

func runLogGroup(p *Pass) {
	inRegistry := strings.HasSuffix(p.Pkg.Path, logsPkgDir)

	// Rule 1: LogGroup*-prefixed string constants are the registry's
	// naming convention; minting one elsewhere forks the evidence
	// trail, and a registry constant that is not lowercase
	// slash-separated fails the store's own validation.
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.CONST {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "LogGroup") {
						continue
					}
					c, ok := p.Pkg.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					if !inRegistry {
						p.Reportf(name.Pos(),
							"constant %s mints a log group name outside the registry; declare it in %s so retention, queries, and the inventory can see the group",
							name.Name, logsPkgDir)
					}
					if val := constant.StringVal(c.Val()); !logGroupRE.MatchString(val) {
						p.Reportf(name.Pos(),
							"log group constant %s = %q is not lowercase slash-separated segments; logs.ValidGroupName rejects it",
							name.Name, val)
					}
				}
			}
		}
	}

	// Rule 2: the group argument of every store-API call is a registry
	// expression — a constant declared in the logs package, or a call
	// into it (PlaneGroup, LambdaGroup). Call sites come from the
	// substrate graph — already resolved once for every analyzer.
	if inRegistry {
		return
	}
	for _, node := range p.Facts.Graph.PkgNodes(p.Pkg) {
		for _, cs := range node.Calls {
			call, callee := cs.Call, cs.Callee
			if callee == nil || callee.Pkg() == nil ||
				!strings.HasSuffix(callee.Pkg().Path(), logsPkgDir) ||
				!logGroupArgMethods[callee.Name()] || len(call.Args) < 1 {
				continue
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if logGroupArgIsRegistryExpr(p.Pkg.Info, call.Args[0]) {
				continue
			}
			p.Reportf(call.Args[0].Pos(),
				"log group passed to (*logs.Service).%s is not a registry expression; use a LogGroup* constant or a deriver (PlaneGroup, LambdaGroup) from %s so the group cannot typo-fork",
				callee.Name(), logsPkgDir)
		}
	}
}

// logGroupArgIsRegistryExpr reports whether expr resolves to a
// constant declared in the logs package or a call into it.
func logGroupArgIsRegistryExpr(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		c, ok := info.Uses[e].(*types.Const)
		return ok && c.Pkg() != nil && strings.HasSuffix(c.Pkg().Path(), logsPkgDir)
	case *ast.SelectorExpr:
		c, ok := info.Uses[e.Sel].(*types.Const)
		return ok && c.Pkg() != nil && strings.HasSuffix(c.Pkg().Path(), logsPkgDir)
	case *ast.CallExpr:
		fn := calleeFunc(info, e)
		return fn != nil && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), logsPkgDir)
	}
	return false
}
