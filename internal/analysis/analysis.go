// Package analysis implements diylint, the repo's domain-invariant
// static analyzer. The paper's cost tables only hold if the simulator
// is deterministic and correctly metered, so a suite of analyzers
// machine-checks the invariants every service must obey:
//
//   - wallclock: simulator, app, and workload code reads time only
//     through an injected clock.Clock, never the time package's wall
//     clock, so virtual-timeline replay stays deterministic;
//   - globalrand: randomness comes from an injected seeded *rand.Rand,
//     never the process-global math/rand source;
//   - moneyfloat: scaling and float conversion of pricing.Money happen
//     only inside internal/pricing, preserving nanodollar parity;
//   - spanhygiene: exported service methods that accept a *sim.Context
//     touch the span API, so trace coverage cannot silently regress;
//   - planeroute: exported service methods that accept a *sim.Context
//     route their calls through plane.Do, so no service can bypass the
//     unified trace/auth/latency/meter pipeline;
//   - metricname: metric series names are registry constants from
//     internal/cloudsim/metrics, lowercase dot-separated and passed by
//     constant reference, so a typo cannot silently split a series;
//   - loggroup: log group names are registry expressions from
//     internal/cloudsim/logs, lowercase slash-separated and passed by
//     constant or deriver call, so a typo cannot fork the evidence
//     trail into an unwatched group;
//   - hotpath: PlaneInterceptor bodies and the same-package functions
//     they reach must not fmt.Sprint* or build map literals per call,
//     so the telemetry fast path's benchmark budget cannot regress;
//   - droppederr: internal/cloudsim never discards an error with `_ =`;
//   - maporder: sim code never ranges over a map where the iteration
//     order can reach observable output (ledger lines, log events,
//     metric publication, rendered text) — sort the keys first;
//   - globalstate: sim/app/workload packages declare no mutable
//     package-level state, so per-account shards cannot alias;
//   - shardsafe: functions reachable from a concurrency seam (plane
//     interceptors, clock OnTick hooks, Batch staging buffers) only
//     write shared fields under a mutex/atomic guard.
//
// All analyzers run off a shared substrate (substrate.go): one pass
// builds the same-module call graph and the reachability/mutation facts
// (reachable-from-interceptor, reachable-from-OnTick,
// reachable-from-handler, emits-output, mutated-variables), and each
// analyzer consumes those facts instead of re-walking every body.
//
// The driver is stdlib-only (go/ast, go/parser, go/types): the repo is
// built offline, so there is no golang.org/x/tools dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding as "file:line: analyzer: message" with the
// file path relative to root (or absolute if rel fails).
func (f Finding) String() string { return f.Rel("") }

// Rel formats the finding with its file path relative to root.
func (f Finding) Rel(root string) string {
	name := f.Pos.Filename
	if root != "" {
		if r, err := filepath.Rel(root, name); err == nil {
			name = filepath.ToSlash(r)
		}
	}
	return fmt.Sprintf("%s:%d: %s: %s", name, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass is the per-package unit of work handed to each analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Facts is the shared substrate output — call graph, seam
	// reachability, output-emission, and variable-mutation facts —
	// computed once per Run and identical across passes.
	Facts *Facts

	findings *[]Finding
	name     string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full diylint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallClock,
		GlobalRand,
		MoneyFloat,
		SpanHygiene,
		PlaneRoute,
		MetricName,
		LogGroup,
		HotPath,
		DroppedErr,
		MapOrder,
		GlobalState,
		ShardSafe,
	}
}

// AnalyzerNames reports the names of the full suite.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run applies the analyzers to every package of prog and returns the
// findings sorted by position. The substrate facts are computed exactly
// once, up front, and shared by every (package, analyzer) pass.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	facts := ComputeFacts(prog)
	var findings []Finding
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Fset: prog.Fset, Pkg: pkg, Facts: facts, findings: &findings, name: a.Name}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// pathWithin reports whether pkgPath lies inside the module-relative
// directory dir (e.g. "internal/cloudsim"). Matching is on path
// segments anywhere in the import path, so the fixture packages under
// internal/analysis/testdata/src/internal/cloudsim/... exercise the
// same scope rules as the real tree.
func pathWithin(pkgPath, dir string) bool {
	return strings.Contains("/"+pkgPath+"/", "/"+dir+"/")
}

// walkFiles applies fn to every node of every file in the pass's
// package (test files are never loaded, so they are never visited).
func walkFiles(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
