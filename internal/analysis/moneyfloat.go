package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MoneyFloat keeps nanodollar parity enforceable: every dollar must be
// computed inside internal/pricing. Outside that package the analyzer
// flags scaling arithmetic (*, /, *=, /=) on pricing.Money and any
// conversion between pricing.Money and a float type. Addition,
// subtraction, and comparison stay legal everywhere — they are exact —
// as are the sanctioned methods (MulFloat, Dollars, FromDollars).
var MoneyFloat = &Analyzer{
	Name: "moneyfloat",
	Doc:  "money scaling and float conversion happen only in internal/pricing; elsewhere use pricing.Money methods",
	Run:  runMoneyFloat,
}

func runMoneyFloat(p *Pass) {
	if pathWithin(p.Pkg.Path, "internal/pricing") {
		return
	}
	info := p.Pkg.Info
	isMoney := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && isMoneyType(tv.Type)
	}
	walkFiles(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.MUL || n.Op == token.QUO) && (isMoney(n.X) || isMoney(n.Y)) {
				p.Reportf(n.OpPos,
					"%q arithmetic on pricing.Money outside internal/pricing; use Money.MulFloat (or move the computation into the pricing package) to keep nanodollar parity",
					n.Op)
			}
		case *ast.AssignStmt:
			if n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				for _, lhs := range n.Lhs {
					if isMoney(lhs) {
						p.Reportf(n.TokPos,
							"%q arithmetic on pricing.Money outside internal/pricing; use Money.MulFloat to keep nanodollar parity", n.Tok)
					}
				}
			}
		case *ast.CallExpr:
			if len(n.Args) != 1 {
				return true
			}
			tv, ok := info.Types[n.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target := tv.Type
			argT := info.Types[n.Args[0]].Type
			switch {
			case isMoneyType(target) && isFloatType(argT):
				p.Reportf(n.Pos(),
					"float-to-Money conversion outside internal/pricing loses nanodollar parity; use pricing.FromDollars")
			case isFloatType(target) && isMoneyType(argT):
				p.Reportf(n.Pos(),
					"Money-to-float conversion outside internal/pricing loses nanodollar parity; use Money.Dollars for display only")
			}
		}
		return true
	})
}

// isMoneyType reports whether t is pricing.Money.
func isMoneyType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Money" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/pricing")
}

// isFloatType reports whether t is a float (or untyped float constant)
// type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
