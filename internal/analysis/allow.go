package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// AllowEntry is one allowlisted finding. Entries are scoped to an
// analyzer and a file (optionally one line of it) and must carry a
// justification — an unexplained suppression is itself a finding.
type AllowEntry struct {
	Analyzer string
	// File is slash-separated and relative to the module root.
	File string
	// Line restricts the entry to one line; 0 allows the whole file.
	Line          int
	Justification string

	used bool
}

// Target renders the entry's scope as file[:line], for messages.
func (e *AllowEntry) Target() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d", e.File, e.Line)
	}
	return e.File
}

// ParseAllowFile reads a .diylint-allow file. Each non-blank,
// non-comment line has the form
//
//	<analyzer> <file>[:<line>] # <justification>
//
// and the justification is mandatory.
func ParseAllowFile(path string) ([]*AllowEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseAllow(string(data), path)
}

func parseAllow(src, name string) ([]*AllowEntry, error) {
	var entries []*AllowEntry
	known := make(map[string]bool)
	for _, a := range AnalyzerNames() {
		known[a] = true
	}
	for i, line := range strings.Split(src, "\n") {
		lineNo := i + 1
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		spec, justification, found := strings.Cut(trimmed, "#")
		if !found || strings.TrimSpace(justification) == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs a `# justification` explaining why the finding is acceptable", name, lineNo)
		}
		fields := strings.Fields(spec)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want `<analyzer> <file>[:<line>] # <justification>`, got %q", name, lineNo, trimmed)
		}
		analyzer, target := fields[0], fields[1]
		if !known[analyzer] {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q (have %s)", name, lineNo, analyzer, strings.Join(AnalyzerNames(), ", "))
		}
		entry := &AllowEntry{
			Analyzer:      analyzer,
			File:          target,
			Justification: strings.TrimSpace(justification),
		}
		if file, lineStr, ok := strings.Cut(target, ":"); ok {
			n, err := strconv.Atoi(lineStr)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%s:%d: bad line number in %q", name, lineNo, target)
			}
			entry.File, entry.Line = file, n
		}
		entry.File = filepath.ToSlash(entry.File)
		entries = append(entries, entry)
	}
	return entries, nil
}

// Filter drops findings matched by an allow entry and returns the
// survivors plus any entries that matched nothing (stale suppressions
// worth cleaning up).
//
// Matching is two-phase. First, exact: same analyzer, same file, and —
// for line-scoped entries — the same line. Then, drift: a line-scoped
// entry whose line matched nothing binds to the nearest remaining
// finding of the same analyzer in the same file, so an unrelated edit
// higher in the file does not turn a justified suppression stale (or,
// worse, let the finding through). An entry suppresses at most one
// drifted finding; only entries that match nothing at all — the
// finding is gone, or the analyzer/file changed — are reported stale.
func Filter(findings []Finding, entries []*AllowEntry, root string) (kept []Finding, stale []*AllowEntry) {
	rels := make([]string, len(findings))
	suppressed := make([]bool, len(findings))
	for i, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = filepath.ToSlash(r)
		}
		rels[i] = rel
		for _, e := range entries {
			if e.Analyzer == f.Analyzer && e.File == rel && (e.Line == 0 || e.Line == f.Pos.Line) {
				e.used = true
				suppressed[i] = true
			}
		}
	}
	for _, e := range entries {
		if e.used || e.Line == 0 {
			continue
		}
		best := -1
		for i, f := range findings {
			if suppressed[i] || f.Analyzer != e.Analyzer || rels[i] != e.File {
				continue
			}
			if best == -1 || absInt(f.Pos.Line-e.Line) < absInt(findings[best].Pos.Line-e.Line) {
				best = i
			}
		}
		if best >= 0 {
			e.used = true
			suppressed[best] = true
		}
	}
	for i, f := range findings {
		if !suppressed[i] {
			kept = append(kept, f)
		}
	}
	for _, e := range entries {
		if !e.used {
			stale = append(stale, e)
		}
	}
	return kept, stale
}

func absInt(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
