package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardSafe guards the concurrency seams of the parallel fleet loop:
// code reachable from a plane interceptor (runs per published call,
// concurrently with every shard), from a clock OnTick hook (runs at
// every timeline move), inside the Batch staging buffers' method sets
// (written by publishers, drained by the tick goroutine), or from a
// fleet shard-worker goroutine (shards run concurrently on all cores)
// must not
// write a field of a value it did not create — receiver, parameter, or
// captured variable — without a guard in the enclosing method set: a
// sync.Mutex/RWMutex Lock in the body, or the repo's *Locked naming
// convention marking the caller as holding the lock. Locals declared in
// the function body are shard-private and free to mutate. Deliberate
// unguarded writes (a pool-owned scratch encoder used by one goroutine
// per checkout) carry a justified .diylint-allow entry.
var ShardSafe = &Analyzer{
	Name: "shardsafe",
	Doc:  "code reachable from concurrency seams (plane interceptors, clock OnTick hooks, Batch method sets, fleet shard workers) must guard shared field writes with a mutex or *Locked convention",
	Run:  runShardSafe,
}

func runShardSafe(p *Pass) {
	if !inSimScope(p.Pkg.Path) {
		return
	}
	for _, node := range p.Facts.Graph.PkgNodes(p.Pkg) {
		if !p.Facts.ReachSeam[node] || nodeGuarded(node) {
			continue
		}
		node := node
		inspectShallow(node.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if field, base := sharedFieldWrite(p.Pkg.Info, node, lhs); field != "" {
						p.Reportf(lhs.Pos(),
							"unguarded write to %s.%s in code reachable from %s; take the struct's mutex (or mark the method *Locked with the lock held by the caller) before mutating state shared across shards",
							base, field, seamName(p.Facts, node))
					}
				}
			case *ast.IncDecStmt:
				if field, base := sharedFieldWrite(p.Pkg.Info, node, n.X); field != "" {
					p.Reportf(n.X.Pos(),
						"unguarded write to %s.%s in code reachable from %s; take the struct's mutex (or mark the method *Locked with the lock held by the caller) before mutating state shared across shards",
						base, field, seamName(p.Facts, node))
				}
			}
		})
	}
}

// nodeGuarded reports whether node's writes are considered guarded: the
// function follows the repo's *Locked naming convention (the caller
// holds the lock), or the body itself takes a sync lock.
func nodeGuarded(n *Node) bool {
	if strings.HasSuffix(n.Name(), "Locked") {
		return true
	}
	for _, cs := range n.Calls {
		c := cs.Callee
		if c == nil || c.Pkg() == nil || c.Pkg().Path() != "sync" {
			continue
		}
		if c.Name() == "Lock" || c.Name() == "RLock" {
			return true
		}
	}
	return false
}

// sharedFieldWrite reports the written field and its base variable name
// when lhs writes a field (or an element of a field) of a value the
// node did not create: the root of the selector chain is a receiver,
// parameter, or captured variable — anything declared outside the
// node's own body. Returns "", "" for locals, package variables
// (globalstate's turf), and non-field targets.
func sharedFieldWrite(info *types.Info, node *Node, lhs ast.Expr) (field, base string) {
	expr := ast.Unparen(lhs)
	// Unwind indexes/derefs to the selector that names the field.
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
			continue
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if v, ok := info.Selections[sel]; !ok || v.Kind() != types.FieldVal {
		return "", ""
	}
	root := rootIdent(sel.X)
	if root == nil {
		return "", ""
	}
	v, ok := info.Uses[root].(*types.Var)
	if !ok {
		return "", ""
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "", "" // package-level: globalstate reports it
	}
	// Declared inside this node's own body → shard-private local.
	if node.Body != nil && v.Pos() >= node.Body.Pos() && v.Pos() <= node.Body.End() {
		return "", ""
	}
	return sel.Sel.Name, root.Name
}

// rootIdent returns the identifier at the base of a selector/index/
// deref chain, or nil (e.g. when the base is a call result, which is a
// fresh value).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return e
		default:
			return nil
		}
	}
}

// seamName names the seam a node is reachable from, for the finding
// message.
func seamName(f *Facts, n *Node) string {
	switch {
	case f.ReachInterceptor[n]:
		return "a plane interceptor (runs per published call)"
	case f.ReachOnTick[n]:
		return "a clock OnTick hook (runs at every timeline move)"
	case f.ReachFleet[n]:
		return "a fleet shard worker (shards run concurrently on all cores)"
	default:
		return "a Batch staging buffer (written by publishers, drained at ticks)"
	}
}
