package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared analysis substrate: one pass over a loaded
// Program that builds a same-module static call graph and computes the
// reachability facts every analyzer consumes. Before it existed each
// call-graph-shaped analyzer (spanhygiene, planeroute, hotpath) re-walked
// every function body and ran its own private fixpoint; the fleet-scale
// analyzers (maporder, globalstate, shardsafe) need module-wide facts —
// which functions can run inside a concurrency seam, which functions can
// reach observable output, which package variables are ever mutated —
// that only make sense computed once, over the whole program.
//
// The graph is deliberately static and conservative:
//
//   - Nodes are function declarations AND function literals. A literal
//     is its own node (it can be registered as a clock OnTick hook or a
//     plane interceptor independent of its enclosing function) with an
//     edge from the enclosing node, since the encloser may invoke it.
//   - Direct calls resolve through go/types (Uses), giving precise
//     edges for functions and methods named at the call site.
//   - A function referenced outside call position (a method value or
//     function value passed around) gets a reference edge from the node
//     that mentions it: whoever receives the value may call it.
//   - Calls through an interface method dispatch to every module method
//     with that name whose receiver implements the interface — but only
//     for interfaces declared inside the module. Stdlib interfaces
//     (io.Writer et al.) would fan out to absurd edge sets and are
//     handled as direct sinks where an analyzer cares.
//
// Everything downstream — seam roots, reachability sets, output-sink
// facts, the mutated-variable index — derives from this one structure.

// Node is one function in the call graph: a declared function/method or
// a function literal.
type Node struct {
	// Fn is the declared function object; nil for literals.
	Fn *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Decl is the enclosing declaration: the declaration itself for
	// declared functions, the lexically enclosing FuncDecl for literals
	// (nil for literals in package-level variable initializers).
	Decl *ast.FuncDecl
	// Pkg is the package the node's body lives in.
	Pkg *Package
	// Body is the function body (never nil; bodiless declarations get no
	// node).
	Body *ast.BlockStmt
	// Calls are the call sites lexically inside this node's own body,
	// excluding those inside nested literals (the literal node owns
	// them). Callee is nil when the call cannot be resolved statically
	// (calls through function-typed variables and parameters).
	Calls []CallSite
	// Callees are the deduplicated outgoing edges: direct calls,
	// referenced function values, nested literals, and interface
	// dispatch fallbacks, in first-mention order.
	Callees []*Node
}

// CallSite is one call expression with its statically resolved callee.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the invoked function or method, nil when unresolvable.
	Callee *types.Func
}

// Name is the node's display name: the declared function's name, or the
// enclosing declaration's name for literals (matching how a reader
// locates the code, and how the pre-substrate analyzers reported
// closures).
func (n *Node) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	if n.Decl != nil {
		return n.Decl.Name.Name
	}
	return "func literal"
}

// Pos is the node's source position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Name.Pos()
}

// Graph is the same-module static call graph over a Program.
type Graph struct {
	// Nodes lists every node in load order (packages in Program order,
	// files in package order, declarations in source order), which is
	// deterministic.
	Nodes []*Node
	// ByFn maps declared function objects to their nodes.
	ByFn map[*types.Func]*Node
	// ByLit maps function literals to their nodes.
	ByLit map[*ast.FuncLit]*Node
	// byPkg groups nodes by package, preserving Nodes order.
	byPkg map[*Package][]*Node
}

// PkgNodes returns the nodes whose bodies live in pkg, in source order.
func (g *Graph) PkgNodes(pkg *Package) []*Node { return g.byPkg[pkg] }

// Facts is the substrate output: the graph plus the program-wide
// reachability and mutation facts analyzers consume. Computed once per
// Run and shared by every analyzer through Pass.Facts.
type Facts struct {
	Prog  *Program
	Graph *Graph

	// ReachInterceptor marks nodes reachable (module-wide) from a
	// telemetry-interceptor seam root: a cloudsim function named
	// PlaneInterceptor or a function/literal passed to
	// (*plane.Plane).Use. Code here runs on every published call,
	// potentially concurrently with every shard.
	ReachInterceptor map[*Node]bool
	// ReachOnTick marks nodes reachable from a clock OnTick hook
	// registration: code here runs at every timeline move, on whichever
	// goroutine advanced the clock.
	ReachOnTick map[*Node]bool
	// ReachHandler marks nodes reachable from a service handler passed
	// to plane.Do: the per-call state-mutating stage.
	ReachHandler map[*Node]bool
	// ReachFleet marks nodes reachable (within the fleet scope) from a
	// goroutine body spawned inside internal/fleet: the shard workers
	// that run account simulations concurrently on every core. The
	// filter admits any edge whose target lives under internal/fleet —
	// same-package bookkeeping plus the fleet/telemetry control tower
	// the workers publish into, which is exactly the cross-worker
	// shared state the seam analyzers exist to guard. Other
	// cross-package callees (the simulator, the apps) operate on
	// shard-private per-account state by construction and stay out.
	ReachFleet map[*Node]bool
	// ReachSeam is the union of the concurrency seams shardsafe guards:
	// interceptor roots, OnTick hooks, the method sets of the
	// publisher-side Batch staging buffers (metrics.Batch / logs.Batch),
	// which are by construction written from publisher goroutines and
	// drained from the tick goroutine — and the fleet shard workers.
	ReachSeam map[*Node]bool

	// Emits marks nodes that can reach an order-observable output sink:
	// fmt printing, strings.Builder/bytes.Buffer/io writes, ledger
	// metering, log-event ingestion, metric publication, or trace
	// annotation. maporder uses it to decide whether a map iteration's
	// order can leak into output.
	Emits map[*Node]bool

	// mutated and addrTaken index package-level variables by how the
	// loaded program uses them: assigned/deleted/incremented anywhere
	// (including through an index or field), or aliased via & /
	// pointer-receiver method calls. globalstate treats a package-level
	// var with neither as an immutable table.
	mutated   map[*types.Var]token.Pos
	addrTaken map[*types.Var]token.Pos
}

// VarMutated reports whether the loaded program ever writes v (directly,
// through an index/field/deref, or via ++/--), and where it first does.
func (f *Facts) VarMutated(v *types.Var) (token.Pos, bool) {
	pos, ok := f.mutated[v]
	return pos, ok
}

// VarAddrTaken reports whether the loaded program ever aliases v — takes
// its address explicitly or implicitly via a pointer-receiver method
// call — and where it first does.
func (f *Facts) VarAddrTaken(v *types.Var) (token.Pos, bool) {
	pos, ok := f.addrTaken[v]
	return pos, ok
}

// ComputeFacts runs the substrate pass over prog: node collection, then
// edge drawing + seam detection + mutation indexing in one walk, then
// the reachability and emission fixpoints.
func ComputeFacts(prog *Program) *Facts {
	b := &graphBuilder{
		graph: &Graph{
			ByFn:  make(map[*types.Func]*Node),
			ByLit: make(map[*ast.FuncLit]*Node),
			byPkg: make(map[*Package][]*Node),
		},
	}
	for _, pkg := range prog.Pkgs {
		b.collectNodes(pkg)
	}
	f := &Facts{
		Prog:      prog,
		Graph:     b.graph,
		mutated:   make(map[*types.Var]token.Pos),
		addrTaken: make(map[*types.Var]token.Pos),
	}
	for _, pkg := range prog.Pkgs {
		b.walkBodies(pkg, f)
	}

	// Seam roots beyond explicit registrations: cloudsim functions named
	// PlaneInterceptor (the factories core wires via plane.Use — the
	// wiring passes a local variable, so the name is the reliable
	// signal) and the method sets of the swap-buffer Batch staging
	// types.
	var batchRoots []*Node
	for _, n := range b.graph.Nodes {
		if n.Fn == nil || !pathWithin(n.Pkg.Path, "internal/cloudsim") {
			continue
		}
		if n.Fn.Name() == "PlaneInterceptor" {
			b.interceptorRoots = append(b.interceptorRoots, n)
		}
		if recvTypeName(n.Fn) == "Batch" {
			batchRoots = append(batchRoots, n)
		}
	}

	anyEdge := func(*Node, *Node) bool { return true }
	f.ReachInterceptor = b.graph.Reachable(b.interceptorRoots, anyEdge)
	f.ReachOnTick = b.graph.Reachable(b.onTickRoots, anyEdge)
	f.ReachHandler = b.graph.Reachable(b.handlerRoots, anyEdge)
	f.ReachFleet = b.graph.Reachable(b.fleetRoots, fleetScope)
	seamRoots := append(append(append([]*Node(nil), b.interceptorRoots...), b.onTickRoots...), batchRoots...)
	f.ReachSeam = b.graph.Reachable(seamRoots, anyEdge)
	for n := range f.ReachFleet {
		f.ReachSeam[n] = true
	}
	f.Emits = b.computeEmits()
	return f
}

// Reachable computes the forward-reachable node set from roots,
// following only edges the filter admits. Roots themselves are included.
func (g *Graph) Reachable(roots []*Node, edge func(from, to *Node) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	work := append([]*Node(nil), roots...)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, c := range n.Callees {
			if !seen[c] && edge(n, c) {
				work = append(work, c)
			}
		}
	}
	return seen
}

// CanReach computes, for every node in pkg, whether the node can reach
// (through edges the filter admits, itself included) a node satisfying
// pred. spanhygiene and planeroute use it with the SamePackage filter to
// propagate "touches the span API" / "routes through plane.Do" along
// delegation chains of any depth — the fixpoint each analyzer used to
// re-implement privately.
func (g *Graph) CanReach(pkg *Package, pred func(*Node) bool, edge func(from, to *Node) bool) map[*Node]bool {
	can := make(map[*Node]bool)
	for _, n := range g.PkgNodes(pkg) {
		if pred(n) {
			can[n] = true
		}
	}
	// Backward fixpoint over the package's nodes: a node reaching a
	// satisfied callee is satisfied. Package node counts are small; the
	// quadratic loop mirrors the old per-analyzer fixpoints.
	for changed := true; changed; {
		changed = false
		for _, n := range g.PkgNodes(pkg) {
			if can[n] {
				continue
			}
			for _, c := range n.Callees {
				if can[c] && edge(n, c) {
					can[n] = true
					changed = true
					break
				}
			}
		}
	}
	return can
}

// SamePackage is the edge filter restricting reachability to calls that
// stay inside one package.
func SamePackage(from, to *Node) bool { return from.Pkg == to.Pkg }

// fleetScope is the ReachFleet edge filter: follow a call only when the
// callee's body lives under internal/fleet (the engine package or its
// telemetry control tower).
func fleetScope(from, to *Node) bool { return pathWithin(to.Pkg.Path, "internal/fleet") }

// recvTypeName reports the bare receiver type name of a method ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// graphBuilder accumulates the graph and seam roots across packages.
type graphBuilder struct {
	graph            *Graph
	interceptorRoots []*Node
	onTickRoots      []*Node
	handlerRoots     []*Node
	fleetRoots       []*Node
}

// collectNodes creates a node for every function declaration and every
// function literal in pkg, before any edges are drawn, so forward
// references resolve.
func (b *graphBuilder) collectNodes(pkg *Package) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			decl, isFunc := d.(*ast.FuncDecl)
			if isFunc && decl.Body != nil {
				if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
					b.addNode(&Node{Fn: fn, Decl: decl, Pkg: pkg, Body: decl.Body})
				}
			}
			// Literals anywhere in the declaration (function bodies and
			// package-level initializers alike) get their own nodes.
			var encl *ast.FuncDecl
			if isFunc {
				encl = decl
			}
			ast.Inspect(d, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					b.addNode(&Node{Lit: lit, Decl: encl, Pkg: pkg, Body: lit.Body})
				}
				return true
			})
		}
	}
}

func (b *graphBuilder) addNode(n *Node) {
	b.graph.Nodes = append(b.graph.Nodes, n)
	b.graph.byPkg[n.Pkg] = append(b.graph.byPkg[n.Pkg], n)
	if n.Fn != nil {
		b.graph.ByFn[n.Fn] = n
	} else {
		b.graph.ByLit[n.Lit] = n
	}
}

// walkBodies draws edges, records call sites, detects seam
// registrations, and indexes variable mutation — one walk per file.
func (b *graphBuilder) walkBodies(pkg *Package, f *Facts) {
	w := &bodyWalker{b: b, pkg: pkg, f: f, callFun: make(map[*ast.Ident]bool)}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			var cur *Node
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
					cur = b.graph.ByFn[fn]
				}
			}
			w.walk(d, cur)
		}
	}
}

// bodyWalker walks one package's declarations with the current graph
// node threaded through literal boundaries.
type bodyWalker struct {
	b   *graphBuilder
	pkg *Package
	f   *Facts
	// callFun marks identifiers that are the operator of a call
	// expression, so the reference-edge pass does not double-count a
	// plain call as a method value. ast.Inspect visits a CallExpr before
	// its Fun child, so the mark is always in place in time.
	callFun map[*ast.Ident]bool
}

// walk visits root attributing calls, references, and mutations to cur;
// nested function literals recurse with the literal as the new cur.
func (w *bodyWalker) walk(root ast.Node, cur *Node) {
	info := w.pkg.Info
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := w.b.graph.ByLit[n]
			if cur != nil {
				addEdge(cur, lit)
			}
			w.walk(n.Body, lit)
			return false // the recursive walk owns the body
		case *ast.GoStmt:
			// A goroutine launched inside the fleet package is a shard
			// worker: its body (and everything it reaches in-package)
			// runs concurrently with every other worker.
			if pathWithin(w.pkg.Path, "internal/fleet") {
				w.b.fleetRoots = append(w.b.fleetRoots, w.argNodes([]ast.Expr{n.Call.Fun})...)
			}
		case *ast.CallExpr:
			w.call(n, cur)
		case *ast.Ident:
			// Function referenced outside call position: a method value
			// or function value escaping into a variable or argument.
			if cur != nil && !w.callFun[n] {
				if fn, ok := info.Uses[n].(*types.Func); ok {
					if target, ok := w.b.graph.ByFn[fn]; ok {
						addEdge(cur, target)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := pkgLevelVar(info, lhs); v != nil {
					markOnce(w.f.mutated, v, lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelVar(info, n.X); v != nil {
				markOnce(w.f.mutated, v, n.X.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := pkgLevelVar(info, n.X); v != nil {
					markOnce(w.f.addrTaken, v, n.X.Pos())
				}
			}
		}
		return true
	})
}

// call handles one call expression: the call-site record, the static
// edge (with interface-dispatch fallback), seam-registration detection,
// and the implicit address-taking of a pointer-receiver method call on a
// package-level variable.
func (w *bodyWalker) call(n *ast.CallExpr, cur *Node) {
	info := w.pkg.Info
	callee := calleeFunc(info, n)
	switch fun := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		w.callFun[fun] = true
	case *ast.SelectorExpr:
		w.callFun[fun.Sel] = true
	}
	if cur != nil {
		cur.Calls = append(cur.Calls, CallSite{Call: n, Callee: callee})
		if callee != nil {
			if target, ok := w.b.graph.ByFn[callee]; ok {
				addEdge(cur, target)
			} else if isInterfaceMethod(callee) {
				w.b.addDispatchEdges(cur, callee)
			}
		}
	}
	if callee == nil || callee.Pkg() == nil {
		return
	}
	// Seam registrations are detected at the call site so the registered
	// literal (not its encloser) becomes the root.
	switch {
	case callee.Name() == "Use" && strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/plane"):
		w.b.interceptorRoots = append(w.b.interceptorRoots, w.argNodes(n.Args)...)
	case callee.Name() == "OnTick" && strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/clock"):
		w.b.onTickRoots = append(w.b.onTickRoots, w.argNodes(n.Args)...)
	case callee.Name() == "Do" && strings.HasSuffix(callee.Pkg().Path(), "internal/cloudsim/plane"):
		w.b.handlerRoots = append(w.b.handlerRoots, w.argNodes(n.Args)...)
	}
	// A pointer-receiver method call on an addressable package-level
	// variable implicitly takes its address (sync.Pool.Get,
	// atomic.Value.Load/Store, Mutex.Lock, ...).
	if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
				if v := pkgLevelVar(info, sel.X); v != nil {
					if _, varIsPtr := v.Type().(*types.Pointer); !varIsPtr {
						markOnce(w.f.addrTaken, v, sel.X.Pos())
					}
				}
			}
		}
	}
}

// argNodes resolves call arguments to graph nodes: function literals and
// directly named functions/methods.
func (w *bodyWalker) argNodes(args []ast.Expr) []*Node {
	info := w.pkg.Info
	var out []*Node
	for _, a := range args {
		switch e := ast.Unparen(a).(type) {
		case *ast.FuncLit:
			if n, ok := w.b.graph.ByLit[e]; ok {
				out = append(out, n)
			}
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok {
				if n, ok := w.b.graph.ByFn[fn]; ok {
					out = append(out, n)
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
				if n, ok := w.b.graph.ByFn[fn]; ok {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// markOnce records the first observed position for v.
func markOnce(m map[*types.Var]token.Pos, v *types.Var, pos token.Pos) {
	if _, ok := m[v]; !ok {
		m[v] = pos
	}
}

// pkgLevelVar resolves expr to the package-level variable at the root of
// its selector/index/deref chain, or nil. For `pkg.Var[i].Field = x` the
// root is Var; for locals, fields of locals, and the blank identifier it
// is nil.
func pkgLevelVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			// pkg.Var: the base resolves to a package name, Sel is the
			// variable itself.
			if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[base].(*types.PkgName); isPkg {
					expr = e.Sel
					continue
				}
			}
			// x.Field: the root variable is x; descend.
			expr = e.X
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok || v.IsField() {
				return nil
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// addDispatchEdges links an interface-method call to every module method
// with the same name whose receiver implements the interface — the
// conservative dispatch fallback. Only interfaces declared inside the
// module fan out; a stdlib interface (io.Writer...) would connect
// everything to everything.
func (b *graphBuilder) addDispatchEdges(from *Node, iface *types.Func) {
	recv := iface.Type().(*types.Signature).Recv().Type()
	var it *types.Interface
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() == nil || !strings.Contains(obj.Pkg().Path(), "internal/") {
			return // stdlib or external interface: no fallback fan-out
		}
		it, _ = named.Underlying().(*types.Interface)
	} else {
		it, _ = recv.(*types.Interface)
	}
	if it == nil {
		return
	}
	for _, cand := range b.graph.Nodes {
		if cand.Fn == nil || cand.Fn.Name() != iface.Name() {
			continue
		}
		sig, ok := cand.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || types.IsInterface(sig.Recv().Type()) {
			continue
		}
		if types.Implements(sig.Recv().Type(), it) {
			addEdge(from, cand)
		}
	}
}

// addEdge appends a deduplicated edge.
func addEdge(from, to *Node) {
	if from == to || to == nil {
		return
	}
	for _, c := range from.Callees {
		if c == to {
			return
		}
	}
	from.Callees = append(from.Callees, to)
}

// outputSink classifies a resolved callee as an order-observable output
// sink: anything whose argument order lands in rendered text, a ledger,
// a log stream, a metric series, or a trace — the places where iterating
// a map becomes a nondeterministic artifact.
func outputSink(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println",
			"Sprint", "Sprintf", "Sprintln":
			return true
		}
		return false
	case "strings", "bytes", "bufio", "io", "os":
		return strings.HasPrefix(name, "Write")
	}
	switch {
	case strings.HasSuffix(pkg, "internal/cloudsim/logs"):
		return name == "PutEvents"
	case strings.HasSuffix(pkg, "internal/cloudsim/metrics"):
		return name == "Record" || name == "Add"
	case strings.HasSuffix(pkg, "internal/cloudsim/trace"):
		return name == "Annotate" || name == "AddUsage"
	case strings.HasSuffix(pkg, "internal/pricing"):
		return name == "Add" // (*pricing.Meter).Add: ledger line order
	}
	return false
}

// computeEmits marks every node that can reach an output sink, through
// module edges or by calling a sink directly — a backward fixpoint over
// the whole graph.
func (b *graphBuilder) computeEmits() map[*Node]bool {
	emits := make(map[*Node]bool)
	for _, n := range b.graph.Nodes {
		for _, cs := range n.Calls {
			if outputSink(cs.Callee) {
				emits[n] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range b.graph.Nodes {
			if emits[n] {
				continue
			}
			for _, c := range n.Callees {
				if emits[c] {
					emits[n] = true
					changed = true
					break
				}
			}
		}
	}
	return emits
}
