#!/bin/sh
# bench.sh — snapshot the cloudsim hot-path, diylint, and fleet
# benchmarks into BENCH_cloudsim.json so interceptor-chain,
# window-lookup, log ingestion, Insights-scan, trace-store,
# analyzer-suite, and fleet-throughput regressions show up as a diff.
# `make bench` runs this.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_cloudsim.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkDoInterceptors|BenchmarkWindowNarrow|BenchmarkLogsIngest|BenchmarkInsightsScan|BenchmarkTraceRecord|BenchmarkServiceMap|BenchmarkDiylint' -benchmem \
	./internal/cloudsim/plane ./internal/cloudsim/metrics ./internal/cloudsim/logs ./internal/cloudsim/trace ./internal/analysis | tee "$RAW"

# Fleet runs take hundreds of ms to seconds each. The 1000-account
# trio (bare vs telemetry vs traced) runs five timed iterations
# because the bench gate checks their ns/request ratios —
# single-iteration noise swings those ratios by ±10 points. The
# 10000-account scale run keeps one iteration so `make bench` stays
# fast.
go test -run '^$' -bench 'BenchmarkFleet(Telemetry|Traced)?/accounts=1000$' -benchmem -benchtime 5x \
	./internal/fleet | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkFleet/accounts=10000$' -benchmem -benchtime 1x \
	./internal/fleet | tee -a "$RAW"

# Benchmarks that b.ReportMetric extra columns (accounts/sec,
# ns/request) shift the field positions, so scan value/unit pairs
# instead of assuming fixed columns.
awk '
BEGIN { print "[" }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = "0"; by = "0"; al = "0"; acc = ""; req = ""
	for (i = 3; i < NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op") ns = v
		else if (u == "B/op") by = v
		else if (u == "allocs/op") al = v
		else if (u == "accounts/sec") acc = v
		else if (u == "ns/request") req = v
	}
	extra = ""
	if (acc != "") extra = extra ", \"accounts_per_sec\": " acc
	if (req != "") extra = extra ", \"ns_per_request\": " req
	printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}", sep, name, $2, ns, by, al, extra
	sep = ",\n"
}
END { print "\n]" }
' "$RAW" >"$OUT"

echo "bench: wrote $OUT"
