#!/bin/sh
# bench.sh — snapshot the cloudsim hot-path and diylint benchmarks into
# BENCH_cloudsim.json so interceptor-chain, window-lookup, log
# ingestion, Insights-scan, and analyzer-suite regressions show up as a diff.
# `make bench` runs this.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_cloudsim.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkDoInterceptors|BenchmarkWindowNarrow|BenchmarkLogsIngest|BenchmarkInsightsScan|BenchmarkDiylint' -benchmem \
	./internal/cloudsim/plane ./internal/cloudsim/metrics ./internal/cloudsim/logs ./internal/analysis | tee "$RAW"

awk '
BEGIN { print "[" }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	printf "%s  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $2, $3, $5, $7
	sep = ",\n"
}
END { print "\n]" }
' "$RAW" >"$OUT"

echo "bench: wrote $OUT"
