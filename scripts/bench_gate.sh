#!/bin/sh
# bench_gate.sh — the benchmark regression gate. Compares the fresh
# `make bench` snapshot (BENCH_cloudsim.json in the working tree)
# against the committed budgets (`git show HEAD:BENCH_cloudsim.json`)
# and fails when any hot-path benchmark regresses more than the margin
# on ns/op, bytes/op, or allocs/op. CI runs this right after
# `make bench`, so a PR that slows the telemetry plane fails to merge.
#
# Usage:
#   bench_gate.sh                  gate the working-tree snapshot
#   bench_gate.sh -update-budgets  re-run the benchmarks and adopt the
#                                  results as the new budgets (commit
#                                  BENCH_cloudsim.json to make it stick)
#   bench_gate.sh -self-test       seed a synthetic 10x regression and
#                                  require the gate to catch it
#
# Intentional performance changes go through the escape hatch: run
# `sh scripts/bench_gate.sh -update-budgets`, review the diff, and
# commit BENCH_cloudsim.json alongside the change that moved it.
#
# BENCH_GATE_MARGIN overrides the regression margin percentage
# (default 15). Small absolute slacks (50 ns, 64 B, 1 alloc) keep the
# percentage from tripping on tiny denominators.
set -eu
cd "$(dirname "$0")/.."

SNAPSHOT=BENCH_cloudsim.json
MARGIN=${BENCH_GATE_MARGIN:-15}

# extract renders one "name ns bytes allocs" line per benchmark entry.
extract() {
	sed -n 's/.*"name": "\([^"]*\)", "iterations": [0-9]*, "ns_per_op": \([0-9.e+]*\), "bytes_per_op": \([0-9]*\), "allocs_per_op": \([0-9]*\).*/\1 \2 \3 \4/p' "$1"
}

# compare <budget-file> <current-file>: every budgeted benchmark must
# exist in the current snapshot and stay within margin on all three
# axes.
compare() {
	{
		extract "$1" | sed 's/^/B /'
		extract "$2" | sed 's/^/C /'
	} | awk -v margin="$MARGIN" '
	function check(name, key, b, c, grace,    lim) {
		lim = b * (1 + margin / 100)
		if (b + grace > lim) lim = b + grace
		if (c > lim) {
			printf "bench_gate: FAIL %-40s %-13s %10g  budget %g (margin %g%%)\n", name, key, c, b, margin
			return 1
		}
		printf "bench_gate: ok   %-40s %-13s %10g  budget %g\n", name, key, c, b
		return 0
	}
	$1 == "B" { bns[$2] = $3; bby[$2] = $4; bal[$2] = $5; next }
	$1 == "C" { cns[$2] = $3; cby[$2] = $4; cal[$2] = $5 }
	END {
		bad = 0
		for (n in bns) {
			if (!(n in cns)) {
				printf "bench_gate: FAIL %s missing from the current snapshot\n", n
				bad++
				continue
			}
			bad += check(n, "ns_per_op", bns[n], cns[n], 50)
			bad += check(n, "bytes_per_op", bby[n], cby[n], 64)
			bad += check(n, "allocs_per_op", bal[n], cal[n], 1)
		}
		if (bad > 0) {
			printf "bench_gate: %d regression(s) over budget; if intentional, run `sh scripts/bench_gate.sh -update-budgets` and commit %s\n", bad, "'"$SNAPSHOT"'"
			exit 1
		}
	}'
}

case "${1:-}" in
-update-budgets)
	# Escape hatch for intentional changes: re-measure and adopt.
	sh scripts/bench.sh
	echo "bench_gate: budgets refreshed; commit $SNAPSHOT to adopt them"
	exit 0
	;;
-self-test)
	# Prove the gate has teeth: seed a 10x ns/op regression into a copy
	# of the budgets and require the comparison to fail.
	BUDGET=$(mktemp) SEEDED=$(mktemp)
	trap 'rm -f "$BUDGET" "$SEEDED"' EXIT
	git show HEAD:$SNAPSHOT >"$BUDGET"
	awk '/"ns_per_op"/ && !done { sub(/"ns_per_op": /, "\"ns_per_op\": 9"); done = 1 } { print }' \
		"$BUDGET" >"$SEEDED"
	if compare "$BUDGET" "$SEEDED" >/dev/null 2>&1; then
		echo "bench_gate: self-test FAILED — a seeded 10x regression passed the gate" >&2
		exit 1
	fi
	echo "bench_gate: self-test ok — seeded regression caught"
	exit 0
	;;
"") ;;
*)
	echo "usage: bench_gate.sh [-update-budgets | -self-test]" >&2
	exit 2
	;;
esac

if ! [ -f "$SNAPSHOT" ]; then
	echo "bench_gate: $SNAPSHOT missing; run \`make bench\` first" >&2
	exit 2
fi
BUDGET=$(mktemp)
trap 'rm -f "$BUDGET"' EXIT
# Budgets come from the last commit, not the working tree: `make bench`
# has just overwritten the working-tree snapshot with fresh numbers.
git show HEAD:$SNAPSHOT >"$BUDGET"
compare "$BUDGET" "$SNAPSHOT"

# Relative telemetry-overhead gate: the fleet control tower must cost
# under MARGIN% ns/request over the untelemetered fleet, measured
# within the same snapshot so machine speed cancels out. Extraction
# uses | as the sed delimiter — the benchmark names contain slashes.
ns_req() {
	sed -n 's|.*"name": "'"$1"'".*"ns_per_request": \([0-9.e+]*\).*|\1|p' "$SNAPSHOT"
}
BASE=$(ns_req "BenchmarkFleet/accounts=1000")
TEL=$(ns_req "BenchmarkFleetTelemetry/accounts=1000")
if [ -z "$BASE" ] || [ -z "$TEL" ]; then
	echo "bench_gate: FAIL fleet telemetry overhead unmeasurable (BenchmarkFleet=${BASE:-missing}, BenchmarkFleetTelemetry=${TEL:-missing} in $SNAPSHOT)" >&2
	exit 1
fi
awk -v base="$BASE" -v tel="$TEL" -v margin="$MARGIN" '
BEGIN {
	pct = 100 * (tel - base) / base
	if (tel > base * (1 + margin / 100)) {
		printf "bench_gate: FAIL fleet telemetry overhead %.1f%% ns/request (%g telemetry vs %g base; margin %g%%)\n", pct, tel, base, margin
		exit 1
	}
	printf "bench_gate: ok   fleet telemetry overhead %.1f%% ns/request (%g telemetry vs %g base)\n", pct, tel, base
}'

# The same relative gate for head-sampled tracing: a traced fleet must
# cost under MARGIN% ns/request over the untraced one — sampled
# tracing has to stay cheap enough to leave on fleet-wide.
TRACED=$(ns_req "BenchmarkFleetTraced/accounts=1000")
if [ -z "$TRACED" ]; then
	echo "bench_gate: FAIL fleet tracing overhead unmeasurable (BenchmarkFleetTraced missing from $SNAPSHOT)" >&2
	exit 1
fi
awk -v base="$BASE" -v traced="$TRACED" -v margin="$MARGIN" '
BEGIN {
	pct = 100 * (traced - base) / base
	if (traced > base * (1 + margin / 100)) {
		printf "bench_gate: FAIL fleet tracing overhead %.1f%% ns/request (%g traced vs %g base; margin %g%%)\n", pct, traced, base, margin
		exit 1
	}
	printf "bench_gate: ok   fleet tracing overhead %.1f%% ns/request (%g traced vs %g base)\n", pct, traced, base
}'
echo "bench_gate: all benchmarks within budget (margin ${MARGIN}%)"
