#!/bin/sh
# check.sh — the repo's full verification gate: static analysis plus
# the test suite under the race detector. CI and `make check` run this.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> diylint ./... (domain invariants: wallclock, globalrand, moneyfloat, spanhygiene, planeroute, droppederr)"
go run ./cmd/diylint ./...

echo ">> ledger parity (Tables 1-3 bit-identical to committed goldens)"
go test ./internal/experiments -run TestLedgerParity

echo ">> go test -race ./..."
go test -race ./...

echo "check: all green"
