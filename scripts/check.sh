#!/bin/sh
# check.sh — the repo's full verification gate: static analysis plus
# the test suite under the race detector. CI and `make check` run this.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> diylint ./... (domain invariants: wallclock, globalrand, moneyfloat, spanhygiene, planeroute, metricname, loggroup, hotpath, droppederr, maporder, globalstate, shardsafe)"
go run ./cmd/diylint ./...

echo ">> ledger parity (Tables 1-3 + metrics3 + logs3 + xray3 bit-identical to committed goldens; observability/logging/tracing on == off)"
go test ./internal/experiments -run 'TestLedgerParity|TestObservabilityPreservesLedger|TestLogsPreserveLedger|TestTracePreservesLedger'

echo ">> alarm determinism (two identically-seeded runs, transition logs diffed)"
LOG1=$(mktemp) LOG2=$(mktemp)
trap 'rm -f "$LOG1" "$LOG2"' EXIT
go test ./internal/cloudsim/metrics -run TestAlarmTransitionsDeterministic -count=1 -v 2>&1 \
	| grep 'transition:' >"$LOG1"
go test ./internal/cloudsim/metrics -run TestAlarmTransitionsDeterministic -count=1 -v 2>&1 \
	| grep 'transition:' >"$LOG2"
if ! [ -s "$LOG1" ]; then
	echo "check: alarm determinism test produced no transitions" >&2
	exit 1
fi
diff "$LOG1" "$LOG2"

echo ">> log-stream determinism (two identically-seeded runs, full event dumps diffed)"
go test ./internal/experiments -run TestLogStreamsDeterministic -count=1 -v 2>&1 \
	| grep 'logline:' >"$LOG1"
go test ./internal/experiments -run TestLogStreamsDeterministic -count=1 -v 2>&1 \
	| grep 'logline:' >"$LOG2"
if ! [ -s "$LOG1" ]; then
	echo "check: log-stream determinism test produced no log lines" >&2
	exit 1
fi
diff "$LOG1" "$LOG2"

echo ">> fleet determinism (1,000-account golden at GOMAXPROCS=1 and NumCPU; control-tower telemetry on == off)"
GOMAXPROCS=1 go test ./internal/experiments -run TestLedgerParityFleet -count=1
go test ./internal/experiments -run TestLedgerParityFleet -count=1

echo ">> fleet double-run (report + control-tower dashboard diffed across worker counts)"
GOMAXPROCS=1 go run ./cmd/diyctl fleet -accounts 300 -span 15m >"$LOG1" 2>/dev/null
go run ./cmd/diyctl fleet -accounts 300 -span 15m >"$LOG2" 2>/dev/null
if ! [ -s "$LOG1" ]; then
	echo "check: fleet run produced no report" >&2
	exit 1
fi
if ! grep -q 'Fleet control tower' "$LOG1"; then
	echo "check: fleet run rendered no control-tower dashboard" >&2
	exit 1
fi
diff "$LOG1" "$LOG2"

echo ">> traced-fleet double-run (sampled kept-sets, service map and critical path diffed across worker counts)"
GOMAXPROCS=1 go run ./cmd/diyctl trace -fleet -accounts 200 -span 10m >"$LOG1" 2>/dev/null
go run ./cmd/diyctl trace -fleet -accounts 200 -span 10m >"$LOG2" 2>/dev/null
if ! grep -q 'Fleet trace rollup' "$LOG1"; then
	echo "check: traced fleet run rendered no trace rollup" >&2
	exit 1
fi
diff "$LOG1" "$LOG2"

echo ">> go test -race ./... (includes the fleet scheduler under the race detector)"
go test -race ./...

echo "check: all green"
