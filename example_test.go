package diy_test

import (
	"fmt"
	"time"

	diy "repro"
)

// Example deploys a private chat room, exchanges one message, and
// prints the monthly compute bill — the paper's pitch in eight lines.
func Example() {
	cloud, _ := diy.NewCloud(diy.CloudOptions{})
	room, _ := diy.InstallChat(cloud, "alice", "alice", "bob")

	a := diy.NewChatClient(room, "alice", "laptop")
	b := diy.NewChatClient(room, "bob", "phone")
	a.Session()
	b.Session()

	a.Send("hello bob — nobody else can read this")
	msgs, _ := b.Receive(nil, 20*time.Second)

	fmt.Println(msgs[0].Body)
	fmt.Println("compute bill:", cloud.Bill().Total())
	// Output:
	// hello bob — nobody else can read this
	// compute bill: $0.00
}

// ExampleMigrate moves a deployment between providers; only ciphertext
// crosses and the history survives.
func ExampleMigrate() {
	aws, _ := diy.NewCloud(diy.CloudOptions{Name: "aws-sim"})
	gcp, _ := diy.NewCloud(diy.CloudOptions{Name: "gcp-sim"})

	room, _ := diy.InstallChat(aws, "alice", "alice", "bob")
	a := diy.NewChatClient(room, "alice", "laptop")
	a.Session()
	a.Send("written before the move")

	moved, _ := diy.Migrate(room, gcp, true)
	a2 := diy.NewChatClient(moved, "alice", "laptop")
	a2.Session()
	hist, _ := a2.History()

	fmt.Println(hist[0].Body)
	fmt.Println("source wiped:", !aws.S3.BucketExists("alice-chat"))
	// Output:
	// written before the move
	// source wiped: true
}

// ExampleNewTCBReport prints the §3.3 trust comparison headline.
func ExampleNewTCBReport() {
	r := diy.NewTCBReport()
	fmt.Printf("DIY trusts %d components; a centralized provider needs %d\n",
		len(r.DIY), len(r.Centralized))
	// Output:
	// DIY trusts 3 components; a centralized provider needs 5
}
