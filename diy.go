// Package diy is the public API of the DIY ("Deploy It Yourself")
// hosting library, a full reproduction of "DIY Hosting for Online
// Privacy" (Palkar & Zaharia, HotNets 2017).
//
// DIY hosts personal online services — group chat, email, file
// transfer, IoT control, video conferencing — on a serverless platform
// instead of always-on servers or centralized providers. User data is
// envelope-encrypted at rest; decryption keys live in a key management
// service and are released only to the deployment's function role; the
// trusted computing base shrinks to {container isolation, KMS, the
// audited app}. Pay-per-request billing makes a highly available
// private service cost cents per month.
//
// # Quick start
//
//	cloud, _ := diy.NewCloud(diy.CloudOptions{})
//	room, _ := diy.InstallChat(cloud, "alice", "alice", "bob")
//	a := diy.NewChatClient(room, "alice", "laptop")
//	b := diy.NewChatClient(room, "bob", "phone")
//	a.Session()
//	b.Session()
//	a.Send("hello bob — nobody else can read this")
//	msgs, _ := b.Receive(nil, 20*time.Second)
//	fmt.Println(cloud.Bill())
//
// Everything runs against a faithful in-process simulation of the 2017
// AWS substrate (Lambda, S3, KMS, SQS, SES, EC2, API Gateway, IAM)
// with the published prices and calibrated latencies; see DESIGN.md
// for the substitution map and EXPERIMENTS.md for the regenerated
// paper tables.
package diy

import (
	"repro/internal/apps/chat"
	"repro/internal/apps/email"
	"repro/internal/apps/filetransfer"
	"repro/internal/apps/iot"
	"repro/internal/apps/video"
	"repro/internal/core"
	"repro/internal/spam"
	"repro/internal/store"
)

// Core model types.
type (
	// Cloud is one simulated provider: the full service stack the DIY
	// architecture needs, plus billing and attestation.
	Cloud = core.Cloud
	// CloudOptions configures NewCloud.
	CloudOptions = core.CloudOptions
	// Deployment is one user's installation of one app on one cloud.
	Deployment = core.Deployment
	// App is a DIY application: a serverless handler plus its
	// resource declaration.
	App = core.App
	// AppSpec declares an app's resource requirements.
	AppSpec = core.AppSpec
	// TCBReport compares DIY's trusted computing base against a
	// centralized provider's.
	TCBReport = core.TCBReport
	// Store is the §8.1 "DIY app store".
	Store = store.Store
	// Manifest describes one published app version in a Store.
	Manifest = store.Manifest
)

// Application types.
type (
	// ChatApp is the §6.2 XMPP-over-HTTPS group chat prototype.
	ChatApp = chat.App
	// ChatClient is one member's chat client.
	ChatClient = chat.Client
	// EmailApp is the DIY email service.
	EmailApp = email.App
	// FileTransferApp is the AirDrop-like transfer service.
	FileTransferApp = filetransfer.App
	// IoTApp is the smart-home controller.
	IoTApp = iot.App
	// VideoCall is a private conference on a dedicated relay VM.
	VideoCall = video.Call
	// SpamFilter is the SpamAssassin-style detector the email app can
	// carry.
	SpamFilter = spam.Filter
)

// NewCloud builds a fully wired simulated provider.
func NewCloud(opts CloudOptions) (*Cloud, error) { return core.NewCloud(opts) }

// Install provisions an app for a user: bucket (ciphertext-only), KMS
// key, queues, least-privilege roles, function, triggers.
func Install(cloud *Cloud, user string, app App) (*Deployment, error) {
	return core.Install(cloud, user, app)
}

// Migrate moves a deployment to another provider; only ciphertext
// crosses, and the data key is re-wrapped in KMS custody.
func Migrate(d *Deployment, dest *Cloud, deleteSource bool) (*Deployment, error) {
	return core.Migrate(d, dest, deleteSource)
}

// Upgrade replaces a deployment's code with a new app version,
// preserving its data and identity.
func Upgrade(d *Deployment, newApp App) error { return core.Upgrade(d, newApp) }

// NewStore returns an empty app store bound to a cloud.
func NewStore(cloud *Cloud) *Store { return store.New(cloud) }

// NewTCBReport returns the §3.3 trusted-computing-base comparison.
func NewTCBReport() TCBReport { return core.NewTCBReport() }

// InstallChat deploys a chat room for user with the given members.
func InstallChat(cloud *Cloud, user string, members ...string) (*Deployment, error) {
	return chat.Install(cloud, user, chat.App{Members: members})
}

// NewChatClient creates a client for a member of a chat deployment.
func NewChatClient(d *Deployment, member, resource string) *ChatClient {
	return chat.NewClient(d, member, resource)
}

// NewSpamFilter returns the default-rule spam filter.
func NewSpamFilter() *SpamFilter { return spam.NewFilter() }

// StartVideoCall launches a relay VM for a private conference. Pass
// instanceType "" for the paper's t2.medium.
func StartVideoCall(cloud *Cloud, user, instanceType string) (*VideoCall, error) {
	return video.StartCall(cloud, user, instanceType, cloud.Clock.Now())
}
