# Developer entry points. `make check` is the pre-commit gate.

GO ?= go

.PHONY: build test check vet lint race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs diylint, the repo's domain-invariant analyzer suite
# (wallclock, globalrand, moneyfloat, spanhygiene, planeroute,
# metricname, loggroup, droppederr). Deliberate findings live in
# .diylint-allow with a justification.
lint:
	$(GO) run ./cmd/diylint ./...

race:
	$(GO) test -race ./...

check:
	sh scripts/check.sh

# bench snapshots the cloudsim hot-path benchmarks (plane.Do under
# interceptor chains, metrics window lookup, log ingestion, Insights
# scans) into BENCH_cloudsim.json.
bench:
	sh scripts/bench.sh
