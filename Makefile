# Developer entry points. `make check` is the pre-commit gate.

GO ?= go

.PHONY: build test check vet lint race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs diylint, the repo's domain-invariant analyzer suite
# (wallclock, globalrand, moneyfloat, spanhygiene, planeroute,
# droppederr). Deliberate findings live in .diylint-allow with a
# justification.
lint:
	$(GO) run ./cmd/diylint ./...

race:
	$(GO) test -race ./...

check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .
