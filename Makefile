# Developer entry points. `make check` is the pre-commit gate.

GO ?= go

.PHONY: build test check vet lint race bench bench-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs diylint, the repo's domain-invariant analyzer suite
# (wallclock, globalrand, moneyfloat, spanhygiene, planeroute,
# metricname, loggroup, hotpath, droppederr, maporder, globalstate,
# shardsafe), all twelve driven off one shared call-graph substrate.
# Output stays human-readable here; CI re-renders the same run with
# -format=sarif for annotation. Deliberate findings live in
# .diylint-allow with a justification.
lint:
	$(GO) run ./cmd/diylint ./...

race:
	$(GO) test -race ./...

check:
	sh scripts/check.sh

# bench snapshots the cloudsim hot-path benchmarks (plane.Do under
# interceptor chains, metrics window lookup, log ingestion, Insights
# scans) into BENCH_cloudsim.json.
bench:
	sh scripts/bench.sh

# bench-gate fails if the fresh snapshot regressed more than 15% over
# the committed budgets on ns/op, bytes/op, or allocs/op. Intentional
# changes adopt new budgets via
# `sh scripts/bench_gate.sh -update-budgets` + commit.
bench-gate:
	sh scripts/bench_gate.sh
