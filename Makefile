# Developer entry points. `make check` is the pre-commit gate.

GO ?= go

.PHONY: build test check vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .
