// Quickstart: deploy a private group chat, exchange a message, and
// inspect what the cloud provider can actually see — nothing.
package main

import (
	"fmt"
	"log"
	"time"

	diy "repro"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
)

func main() {
	log.SetFlags(0)

	// One simulated provider with the 2017 AWS price book.
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Install a chat room: this provisions a serverless function, an
	// encrypted bucket, a KMS master key, per-member inbox queues and
	// least-privilege IAM roles — the whole of the paper's Figure 1.
	room, err := diy.InstallChat(cloud, "alice", "alice", "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %s at endpoint %s\n", room.FnName, room.Endpoint)

	alice := diy.NewChatClient(room, "alice", "laptop")
	bob := diy.NewChatClient(room, "bob", "phone")
	if _, err := alice.Session(); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Session(); err != nil {
		log.Fatal(err)
	}

	secret := "our plans are private"
	stats, err := alice.Send(secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice -> room: run %v, billed %v (the 100ms quantum)\n",
		stats.RunTime.Round(time.Millisecond), stats.BilledTime)

	msgs, err := bob.Receive(nil, 20*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob received: %q from %s\n", msgs[0].Body, msgs[0].From)

	// What the provider sees at rest: sealed envelopes only.
	admin := &sim.Context{Principal: room.Role}
	obj, err := cloud.S3.Get(admin, room.Bucket, "room")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at rest in the cloud: %d bytes, sealed=%v (plaintext is unreachable without KMS)\n",
		len(obj.Data), envelope.IsSealed(obj.Data))

	fmt.Println("\nmonthly bill so far:")
	fmt.Print(cloud.Bill())
}
