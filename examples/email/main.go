// Email runs the DIY mail service end to end, including a real SMTP
// server on a TCP port: mail submitted with Go's net/smtp client flows
// through the RFC 5321 engine into the same encrypt-and-store handler
// the SES hook uses, gets spam-scored, and lands sealed in the user's
// bucket. The client then lists and fetches it over the HTTPS tunnel.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	netsmtp "net/smtp"

	diy "repro"
	"repro/internal/apps/email"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
	"repro/internal/proto/smtp"
)

func main() {
	log.SetFlags(0)

	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mailbox, err := diy.Install(cloud, "casey", diy.EmailApp{SpamFilter: diy.NewSpamFilter()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed mailbox casey@%s\n", email.MailDomain)

	// A real SMTP endpoint (what §8.3 asks serverless platforms to
	// support natively): deliveries bridge into the SES trigger.
	server := &smtp.Server{
		Hostname: email.MailDomain,
		Handler: func(from string, to []string, data []byte) error {
			for _, rcpt := range to {
				ctx := &sim.Context{App: "email", Cursor: sim.NewCursor(cloud.Clock.Now())}
				if err := cloud.SES.Deliver(ctx, from, rcpt, data); err != nil {
					return err
				}
			}
			return nil
		},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()
	fmt.Printf("SMTP listening on %s\n", ln.Addr())

	// Deliver two messages over the wire with the stdlib client.
	send := func(from, subject, body string) {
		msg := fmt.Sprintf("From: %s\r\nTo: casey@%s\r\nSubject: %s\r\n\r\n%s\r\n",
			from, email.MailDomain, subject, body)
		err := netsmtp.SendMail(ln.Addr().String(), nil, from,
			[]string{"casey@" + email.MailDomain}, []byte(msg))
		if err != nil {
			log.Fatalf("SMTP send: %v", err)
		}
	}
	send("friend@remote.net", "dinner friday?", "new thai place on university ave")
	send("winner999999@lottery.biz", "CONGRATULATIONS WINNER",
		"You won!!! Claim your FREE prize of $1,000,000 now. Act now! Wire transfer of $500,000 dollars awaits.")

	// List the mailbox through the HTTPS endpoint.
	resp, _, err := mailbox.Invoke(mailbox.ClientContext(), "list", nil)
	if err != nil {
		log.Fatal(err)
	}
	var entries []email.IndexEntry
	if err := json.Unmarshal(resp.Body, &entries); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmailbox index:")
	for _, e := range entries {
		tag := ""
		if e.Spam {
			tag = fmt.Sprintf("  [SPAM %.1f: %v]", e.Score, e.Rules)
		}
		fmt.Printf("  #%d %-24s %q%s\n", e.ID, e.From, e.Subject, tag)
	}

	// Fetch the ham message.
	resp, _, err = mailbox.Invoke(mailbox.ClientContext(), "fetch", []byte(fmt.Sprintf("%d", entries[0].ID)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfetched message #%d (%d bytes)\n", entries[0].ID, len(resp.Body))

	// Show that the provider stores only ciphertext.
	admin := &sim.Context{Principal: mailbox.Role}
	obj, err := cloud.S3.Get(admin, mailbox.Bucket, "mail/000001")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at rest: mail/000001 is %d bytes of sealed ciphertext (sealed=%v)\n",
		len(obj.Data), envelope.IsSealed(obj.Data))

	fmt.Println("\nbill so far:")
	fmt.Print(cloud.Bill())
}
