// Video demonstrates the private conferencing relay: a t2.medium VM
// (the paper's choice, since 2017 Lambda cannot hold multiple
// connections) fans frames out between participants, bills per second,
// and the hour-long HD call lands at the paper's $0.11.
package main

import (
	"fmt"
	"log"
	"time"

	diy "repro"
	"repro/internal/apps/video"
	"repro/internal/pricing"
)

func main() {
	log.SetFlags(0)

	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		log.Fatal(err)
	}
	call, err := diy.StartVideoCall(cloud, "casey", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("launched a private t2.medium relay")

	for _, p := range []string{"casey", "dana"} {
		if err := call.Join(p); err != nil {
			log.Fatal(err)
		}
	}

	// A few real frames through the fan-out path.
	for i := 0; i < 3; i++ {
		if err := call.SendFrame(nil, "casey", []byte(fmt.Sprintf("keyframe-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	frames, err := call.RecvFrames("dana")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dana received %d frames through the relay\n", len(frames))

	// Then an hour of steady HD call, modelled.
	if err := call.Simulate(time.Hour, video.HDCallBandwidthMbps); err != nil {
		log.Fatal(err)
	}
	in, out := call.TrafficBytes()
	fmt.Printf("hour-long HD call: %.2f GB in, %.2f GB out through the relay\n",
		float64(in)/1e9, float64(out)/1e9)

	if err := call.End(cloud.Clock.Now()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nbill for the call:")
	fmt.Print(cloud.Bill())
	fmt.Printf("\nclosed-form check (paper: \"roughly $0.11\"): %s\n",
		video.CostOfCall(pricing.Default2017(), video.DefaultInstanceType, time.Hour, video.HDCallBandwidthMbps))
}
