// Groupchat replays the paper's calibration workload — "the authors'
// Slack group sends an average of 5000 Slack messages per week among a
// group of 15 people" — through a DIY chat deployment for a simulated
// week, then prices the month. It also serves the deployment over a
// real TCP socket through the gateway's net/http adapter and sends one
// stanza through it, demonstrating the XMPP-over-HTTPS tunnel on real
// sockets.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	diy "repro"
	"repro/internal/apps/chat"
	"repro/internal/pricing"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		log.Fatal(err)
	}
	group := workload.PaperSlackGroup()
	room, err := diy.Install(cloud, "team", chat.App{Members: group.Members})
	if err != nil {
		log.Fatal(err)
	}

	// One client per member, all sessioned.
	clients := make(map[string]*chat.Client, len(group.Members))
	for _, m := range group.Members {
		c := chat.NewClient(room, m, "desktop")
		if _, err := c.Session(); err != nil {
			log.Fatal(err)
		}
		clients[m] = c
	}

	// Replay one simulated week of the trace.
	span := 7 * 24 * time.Hour
	events := group.Trace(cloud.Clock.Now(), span)
	fmt.Printf("replaying %d messages (%.0f/week) from %d members over a simulated week...\n",
		len(events), float64(len(events)), len(group.Members))

	var runs []time.Duration
	perSender := make(map[string]int)
	for _, ev := range events {
		cloud.Clock.Set(ev.At)
		stats, err := clients[ev.From].Send(ev.Body)
		if err != nil {
			log.Fatalf("send from %s: %v", ev.From, err)
		}
		runs = append(runs, stats.RunTime)
		perSender[ev.From]++
	}
	// Storage accrues for the month the data sits there.
	cloud.S3.AccrueStorage(pricing.Month, "chat")

	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	fmt.Printf("median run %v, p99 %v, history bytes stored %d\n",
		runs[len(runs)/2].Round(time.Millisecond),
		runs[len(runs)*99/100].Round(time.Millisecond),
		cloud.S3.StorageBytes(room.Bucket))

	top := ""
	best := 0
	for m, n := range perSender {
		if n > best {
			top, best = m, n
		}
	}
	fmt.Printf("chattiest member: %s (%d messages)\n", top, best)

	fmt.Println("\nmonth bill for the whole group's service:")
	fmt.Print(cloud.Bill())

	// --- Real sockets: serve the same deployment over TCP. ---
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: cloud.Gateway}
	go srv.Serve(ln)
	defer srv.Close()

	stanza := fmt.Sprintf(
		`<message from="member00@%s/curl" to="room@%s" type="groupchat" id="tcp-1"><body>hello over real TCP</body></message>`,
		chat.Domain, chat.Domain)
	req, err := http.NewRequest("POST", "http://"+ln.Addr().String()+room.Endpoint, strings.NewReader(stanza))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-DIY-Op", "stanza")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nXMPP-over-HTTP(S) on a real socket %s -> %d %s\n",
		ln.Addr(), resp.StatusCode, string(body))
}
