// Iot demonstrates the DIY smart-home controller: device registration,
// command relay through the sealed commands queue, telemetry reports
// that trip alert rules, and the dashboard — with all state encrypted
// at rest in the user's own deployment.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	diy "repro"
	"repro/internal/apps/iot"
)

func main() {
	log.SetFlags(0)

	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		log.Fatal(err)
	}
	d, err := diy.Install(cloud, "casey", diy.IoTApp{
		AlertRules: map[string]float64{"temperature_c": 60, "water_ppm": 500},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed IoT controller at %s\n", d.Endpoint)

	invoke := func(op string, v any) []byte {
		var body []byte
		if v != nil {
			body, _ = json.Marshal(v)
		}
		resp, _, err := d.Invoke(d.ClientContext(), op, body)
		if err != nil || resp.Status != 200 {
			log.Fatalf("%s: %v (status %d: %s)", op, err, resp.Status, resp.Body)
		}
		return resp.Body
	}

	// Register the home's devices.
	for _, dev := range []iot.Device{
		{Name: "thermostat", Kind: "climate"},
		{Name: "boiler", Kind: "climate"},
		{Name: "front-door", Kind: "security"},
	} {
		invoke("register", dev)
		fmt.Printf("registered %s (%s)\n", dev.Name, dev.Kind)
	}

	// The user's phone sends a command; the device long-polls for it.
	invoke("command", iot.Command{Device: "thermostat", Action: "set", Arg: "21C"})
	ctx := d.ClientContext()
	msgs, err := cloud.SQS.Receive(ctx, d.Queues[iot.CommandsQueue], 1, 20*time.Second)
	if err != nil || len(msgs) != 1 {
		log.Fatalf("device poll: %v (%d messages)", err, len(msgs))
	}
	dataKey, err := cloud.KMS.Decrypt(d.ClientContext(), d.WrappedKey)
	if err != nil {
		log.Fatal(err)
	}
	var cmd iot.Command
	if err := iot.OpenQueueJSON(dataKey, msgs[0].Body, "command", &cmd); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thermostat received sealed command: %s %s\n", cmd.Action, cmd.Arg)

	// Telemetry: the boiler overheats and trips an alert.
	invoke("report", iot.Report{Device: "boiler", Metrics: map[string]float64{"temperature_c": 45}})
	invoke("report", iot.Report{Device: "boiler", Metrics: map[string]float64{"temperature_c": 96}})
	alerts, err := cloud.SQS.Receive(d.ClientContext(), d.Queues[iot.AlertsQueue], 1, 20*time.Second)
	if err != nil || len(alerts) != 1 {
		log.Fatalf("alert poll: %v (%d messages)", err, len(alerts))
	}
	var alert iot.Alert
	if err := iot.OpenQueueJSON(dataKey, alerts[0].Body, "alert", &alert); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALERT on casey's phone: %s %s=%.0f (limit %.0f)\n",
		alert.Device, alert.Metric, alert.Value, alert.Limit)

	// Dashboard summary.
	var db iot.Dashboard
	if err := json.Unmarshal(invoke("dashboard", nil), &db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndashboard: %d devices, %d queries relayed, %d alerts\n",
		len(db.Devices), db.Queries, db.Alerts)
	for _, dev := range db.Devices {
		fmt.Printf("  %-12s %-10s metrics=%v\n", dev.Name, dev.Kind, dev.Metrics)
	}

	fmt.Println("\nbill so far:")
	fmt.Print(cloud.Bill())
}
