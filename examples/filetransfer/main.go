// Filetransfer demonstrates the AirDrop-like DIY service: the sender
// uploads a file into sealed temporary storage, the recipient learns
// of it through the offers queue and downloads it directly from
// storage, opening the envelope with the data key KMS releases to the
// user's client principal.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"time"

	diy "repro"
	"repro/internal/apps/filetransfer"
	"repro/internal/crypto/envelope"
)

func main() {
	log.SetFlags(0)

	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		log.Fatal(err)
	}
	d, err := diy.Install(cloud, "casey", diy.FileTransferApp{TTL: 24 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed file transfer at %s (1 GB function, %v TTL)\n",
		d.Endpoint, 24*time.Hour)

	// Sender uploads a 5 MB file addressed to dana.
	payload := bytes.Repeat([]byte("home-video-frame "), 300_000) // ~5 MB
	req, _ := json.Marshal(filetransfer.UploadRequest{
		Name: "birthday.mp4", To: "dana", Data: payload,
	})
	resp, stats, err := d.Invoke(d.ClientContext(), "upload", req)
	if err != nil || resp.Status != 200 {
		log.Fatalf("upload: %v (status %d)", err, resp.Status)
	}
	fmt.Printf("uploaded %d bytes: run %v, billed %v, peak memory %d MB\n",
		len(payload), stats.RunTime.Round(time.Millisecond), stats.BilledTime,
		stats.PeakMemoryBytes>>20)

	// Recipient: poll the offers queue, open the sealed notice.
	ctx := d.ClientContext()
	msgs, err := cloud.SQS.Receive(ctx, d.Queues[filetransfer.OffersQueue], 1, 20*time.Second)
	if err != nil || len(msgs) != 1 {
		log.Fatalf("offer poll: %v (%d messages)", err, len(msgs))
	}
	dataKey, err := cloud.KMS.Decrypt(d.ClientContext(), d.WrappedKey)
	if err != nil {
		log.Fatal(err)
	}
	noticePT, err := envelope.Open(dataKey, msgs[0].Body, []byte("offer"))
	if err != nil {
		log.Fatal(err)
	}
	var offer filetransfer.Offer
	if err := json.Unmarshal(noticePT, &offer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dana's device saw the offer: %q from %s (%d bytes)\n",
		offer.Name, offer.From, offer.Size)

	// Direct sealed fetch (the "simultaneous download" path): read the
	// object straight from storage and open it locally.
	obj, err := cloud.S3.Get(d.ClientContext(), d.Bucket, filetransfer.ObjectKey(offer.Name))
	if err != nil {
		log.Fatal(err)
	}
	pt, err := envelope.Open(dataKey, obj.Data, []byte(filetransfer.ObjectKey(offer.Name)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded and opened locally: %d bytes, intact=%v\n",
		len(pt), bytes.Equal(pt, payload))

	// A day later, the sweep clears the temporary storage.
	cloud.Clock.Advance(25 * time.Hour)
	resp, _, err = d.Invoke(d.ClientContext(), "sweep", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TTL sweep removed %s expired transfer(s)\n", resp.Body)

	fmt.Println("\nbill so far:")
	fmt.Print(cloud.Bill())
}
