// Command diylint runs the repo's domain-invariant static analyzers:
// virtual-time purity (wallclock), seeded randomness (globalrand),
// nanodollar money discipline (moneyfloat), trace-span coverage
// (spanhygiene), plane routing (planeroute), metric-name registry
// discipline (metricname), log-group registry discipline (loggroup),
// telemetry hot-path allocation discipline (hotpath), discarded errors
// (droppederr), map-iteration-order determinism (maporder), no mutable
// package-level state (globalstate), and guarded writes across
// concurrency seams (shardsafe). All twelve run off one shared
// substrate pass that builds the module call graph and its
// reachability facts.
//
// Usage:
//
//	diylint [-allow file] [-format text|json|sarif] [packages...]
//
// Packages are directory patterns relative to the module root
// ("./..." by default; a trailing /... recurses, skipping testdata).
// With -format=text (the default) findings print as
// "file:line: analyzer: message"; -format=json emits a JSON array and
// -format=sarif a SARIF 2.1.0 log for CI annotation. Exit status is 0
// when clean, 1 when findings remain after the allowlist, and 2 on
// driver errors.
//
// Pre-existing findings that are deliberate carry an entry in the
// module root's .diylint-allow file:
//
//	<analyzer> <file>[:<line>] # <justification>
//
// The justification is required — an unexplained suppression is
// rejected — and entries that no longer match anything are reported as
// stale so the file cannot rot. Line-scoped entries tolerate line
// drift: if the exact line no longer matches, the entry binds to the
// nearest finding of the same analyzer in the same file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	allowFlag := flag.String("allow", "", "allowlist file (default: <module root>/.diylint-allow if present)")
	formatFlag := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: diylint [-allow file] [-format text|json|sarif] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*allowFlag, *formatFlag, flag.Args()))
}

func run(allowPath, format string, patterns []string) int {
	switch format {
	case "text", "json", "sarif":
	default:
		return fail(fmt.Errorf("unknown -format %q (want text, json, or sarif)", format))
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		return fail(err)
	}
	// Interpret patterns relative to the invocation directory, not the
	// module root, so `go run ./cmd/diylint ./internal/...` works from
	// subdirectories too.
	abs := make([]string, len(patterns))
	for i, p := range patterns {
		if filepath.IsAbs(p) {
			abs[i] = p
		} else {
			abs[i] = filepath.Join(wd, p)
		}
	}

	prog, err := analysis.Load(root, abs)
	if err != nil {
		return fail(err)
	}

	var entries []*analysis.AllowEntry
	if allowPath == "" {
		candidate := filepath.Join(root, ".diylint-allow")
		if _, statErr := os.Stat(candidate); statErr == nil {
			allowPath = candidate
		}
	}
	if allowPath != "" {
		entries, err = analysis.ParseAllowFile(allowPath)
		if err != nil {
			return fail(err)
		}
	}

	findings := analysis.Run(prog, analysis.Analyzers())
	kept, stale := analysis.Filter(findings, entries, root)
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "diylint: stale allowlist entry: %s %s (matches nothing; remove it)\n", e.Analyzer, e.Target())
	}
	switch format {
	case "json":
		if err := analysis.WriteJSON(os.Stdout, kept, root); err != nil {
			return fail(err)
		}
	case "sarif":
		if err := analysis.WriteSARIF(os.Stdout, kept, root); err != nil {
			return fail(err)
		}
	default:
		for _, f := range kept {
			fmt.Println(f.Rel(root))
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "diylint: %d finding(s)\n", len(kept))
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "diylint:", err)
	return 2
}
