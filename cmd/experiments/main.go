// Command experiments regenerates every table and figure in the
// paper's evaluation, plus the ablations, and prints them to stdout.
//
// Usage:
//
//	experiments               # everything
//	experiments -table 2      # one table (1, 2 or 3)
//	experiments -figure 1     # the Figure 1 executable trace
//	experiments -claims       # the headline claims
//	experiments -ablations    # the four ablation sweeps
//	experiments -sends 500    # more Table 3 samples
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	table := flag.Int("table", 0, "regenerate only this table (1-3)")
	figure := flag.Int("figure", 0, "regenerate only this figure (1)")
	claims := flag.Bool("claims", false, "recompute only the headline claims")
	ablations := flag.Bool("ablations", false, "run only the ablation sweeps")
	sends := flag.Int("sends", 200, "Table 3 sample count")
	seed := flag.Int64("seed", 0, "latency-model seed override for Table 3 (0 = default)")
	sweepSends := flag.Int("sweep-sends", 80, "memory-sweep samples per point")
	flag.Parse()

	all := *table == 0 && *figure == 0 && !*claims && !*ablations

	if all || *table == 1 {
		t1, err := experiments.RunTable1()
		check(err)
		fmt.Println(t1.Render())
	}
	if all || *table == 2 {
		fmt.Println(experiments.RenderTable2(experiments.RunTable2()))
		fmt.Println(experiments.RenderFullAccounting(experiments.RunTable2FullAccounting()))
		measured, err := experiments.RunTable2Measured(1)
		check(err)
		fmt.Println(experiments.RenderTable2Measured(measured))
	}
	if all || *table == 3 {
		t3, err := experiments.RunTable3(experiments.Table3Config{Sends: *sends, Seed: *seed})
		check(err)
		fmt.Println(t3.Render())

		tr3, err := experiments.RunTrace3(*sends, *seed)
		check(err)
		fmt.Println(tr3.Render())

		x3, err := experiments.RunXRay3(*sends, *seed)
		check(err)
		fmt.Println(x3.Render())

		m3, err := experiments.RunMetrics3(experiments.Table3Config{Sends: *sends, Seed: *seed})
		check(err)
		fmt.Println(m3.Render())

		l3, err := experiments.RunLogs3(experiments.Table3Config{Sends: *sends, Seed: *seed})
		check(err)
		fmt.Println(l3.Render())
	}
	if all || *figure == 1 {
		tr, err := experiments.RunFigure1()
		check(err)
		fmt.Println(tr.Render())
	}
	if all || *claims {
		c, err := experiments.RunClaims()
		check(err)
		fmt.Println(c.Render())
	}
	if all || *ablations {
		mem, err := experiments.RunMemorySweep(*sweepSends)
		check(err)
		fmt.Println(experiments.RenderMemorySweep(mem))

		fmt.Println(experiments.RenderCrossover(experiments.RunDIYvsEC2Crossover()))

		cold, err := experiments.RunColdStartAblation(2)
		check(err)
		fmt.Println(experiments.RenderColdStarts(cold))

		fmt.Println(experiments.RenderPollInterval(experiments.RunPollIntervalAblation()))

		backends, err := experiments.RunBackendComparison(*sweepSends)
		check(err)
		fmt.Println(experiments.RenderBackends(backends))

		streaming, err := experiments.RunStreamingComparison(0)
		check(err)
		fmt.Println(experiments.RenderStreaming(streaming))

		fmt.Println(experiments.RenderVideoHosting(experiments.RunVideoHostingComparison()))

		ddos, err := experiments.RunDDoSCostStudy(20_000)
		check(err)
		fmt.Println(experiments.RenderDDoS(ddos))
	}
}

func check(err error) {
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
}
