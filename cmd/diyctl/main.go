// Command diyctl demonstrates operating DIY deployments from the
// command line against an in-process simulated provider.
//
// Usage:
//
//	diyctl demo      # full scenario: install, chat, mail, bill, migrate
//	diyctl store     # app-store walkthrough: publish, install, report
//	diyctl trace     # X-Ray-sim: span trees, service map, filter queries
//	diyctl trace -fleet  # sampled tracing across a fleet, tower rollups
//	diyctl metrics   # CloudWatch-sim dashboard: RED metrics, alarms, cost
//	diyctl logs      # CloudWatch Logs-sim: REPORT lines, Insights queries
//	diyctl tcb       # print the trusted-computing-base comparison
//	diyctl bill      # price the paper's Table 2 workloads
//	diyctl fleet     # simulate a fleet of independent DIY accounts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	diy "repro"
	"repro/internal/apps/email"
	"repro/internal/apps/iot"
	"repro/internal/cloudsim/sim"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("diyctl: ")
	flag.Usage = usage
	flag.Parse()

	cmd := flag.Arg(0)
	var err error
	switch cmd {
	case "demo":
		err = demo()
	case "store":
		err = storeDemo()
	case "tcb":
		fmt.Println(diy.NewTCBReport())
	case "attest":
		err = attestDemo()
	case "stream":
		err = streamDemo()
	case "trace":
		err = traceDemo(flag.Args()[1:])
	case "metrics":
		err = metricsDemo()
	case "logs":
		err = logsDemo()
	case "bill":
		fmt.Println(experiments.RenderTable2(experiments.RunTable2()))
	case "fleet":
		err = fleetDemo(flag.Args()[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: diyctl <demo|store|attest|stream|trace|metrics|logs|tcb|bill|fleet>")
	fmt.Fprintln(os.Stderr, "       diyctl trace [-fleet] [-accounts N] [-span D] [-seed S]")
	fmt.Fprintln(os.Stderr, "       diyctl fleet [-accounts N] [-span D] [-seed S] [-max-simulated N] [-workers N] [-telemetry] [-top N] [-watch] [-cpuprofile F] [-memprofile F]")
}

// demo runs the end-to-end scenario: deploy chat and email for a user,
// exchange traffic, print the bill, then migrate providers.
func demo() error {
	fmt.Println("== DIY demo: deploy it yourself ==")
	aws, err := diy.NewCloud(diy.CloudOptions{Name: "aws-sim"})
	if err != nil {
		return err
	}

	fmt.Println("\n-- installing group chat for user 'casey' (members casey, dana)")
	room, err := diy.InstallChat(aws, "casey", "casey", "dana")
	if err != nil {
		return err
	}
	casey := diy.NewChatClient(room, "casey", "laptop")
	dana := diy.NewChatClient(room, "dana", "phone")
	if _, err := casey.Session(); err != nil {
		return err
	}
	if _, err := dana.Session(); err != nil {
		return err
	}
	stats, err := casey.Send("the chat history never exists in plaintext on the provider")
	if err != nil {
		return err
	}
	fmt.Printf("   sent one message: run %v, billed %v, region %s\n",
		stats.RunTime.Round(time.Millisecond), stats.BilledTime, stats.Region)
	msgs, err := dana.Receive(nil, 20*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("   dana received %d message(s) via SQS long poll\n", len(msgs))

	fmt.Println("\n-- installing email for user 'casey'")
	mailbox, err := diy.Install(aws, "casey", diy.EmailApp{SpamFilter: diy.NewSpamFilter()})
	if err != nil {
		return err
	}
	inCtx := &sim.Context{App: "email", Cursor: sim.NewCursor(aws.Clock.Now())}
	raw := "From: friend@remote.net\r\nSubject: lunch?\r\n\r\nnoon at the usual place?\r\n"
	if err := aws.SES.Deliver(inCtx, "friend@remote.net", "casey@"+email.MailDomain, []byte(raw)); err != nil {
		return err
	}
	resp, _, err := mailbox.Invoke(mailbox.ClientContext(), "list", nil)
	if err != nil {
		return err
	}
	var entries []email.IndexEntry
	if err := json.Unmarshal(resp.Body, &entries); err != nil {
		return err
	}
	fmt.Printf("   mailbox index: %d message(s), first subject %q\n", len(entries), entries[0].Subject)

	fmt.Println("\n-- current bill (everything inside the free tiers):")
	fmt.Print(indent(aws.Bill().String()))

	fmt.Println("\n-- migrating the chat room to another provider")
	gcp, err := diy.NewCloud(diy.CloudOptions{Name: "gcp-sim"})
	if err != nil {
		return err
	}
	moved, err := diy.Migrate(room, gcp, true)
	if err != nil {
		return err
	}
	casey2 := diy.NewChatClient(moved, "casey", "laptop")
	if _, err := casey2.Session(); err != nil {
		return err
	}
	hist, err := casey2.History()
	if err != nil {
		return err
	}
	fmt.Printf("   history intact after migration: %d message(s); source provider wiped\n", len(hist))
	return nil
}

// attestDemo walks the §8.2 enclave attestation flow, including the
// tamper case.
func attestDemo() error {
	fmt.Println("== enclave attestation (paper §3.3 / §8.2) ==")
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		return err
	}
	d, err := diy.Install(cloud, "casey", diy.IoTApp{})
	if err != nil {
		return err
	}
	fmt.Println("\n-- attested request against the honest deployment")
	resp, _, err := d.InvokeAttested(d.ClientContext(), "dashboard", nil)
	if err != nil {
		return err
	}
	fmt.Printf("   quote verified, request served (status %d)\n", resp.Status)

	fmt.Println("\n-- the provider swaps the deployment package behind the user's back")
	err = cloud.Lambda.ReplaceCode(d.FnName, []byte("diy-iot:controller:v1-backdoored"), nil)
	if err != nil {
		return err
	}
	_, _, err = d.InvokeAttested(d.ClientContext(), "dashboard", nil)
	if err == nil {
		return fmt.Errorf("tampered code passed attestation")
	}
	fmt.Printf("   attested client refused: %v\n", err)
	return nil
}

// streamDemo prints the §8.3 suspend/resume comparison.
func streamDemo() error {
	fmt.Println("== §8.3 extension: long-lived TCP sessions on serverless ==")
	points, err := experiments.RunStreamingComparison(0)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(experiments.RenderStreaming(points))
	return nil
}

// storeDemo walks the §8.1 app store.
func storeDemo() error {
	fmt.Println("== DIY app store (paper §8.1) ==")
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		return err
	}
	s := diy.NewStore(cloud)
	err = s.Publish(diy.Manifest{
		Name: "iot", Version: 1, Publisher: "diy-labs",
		Description: "smart home controller",
		Audited:     true,
		Permissions: []string{"1 storage bucket (ciphertext only)", "1 KMS key", "2 queues"},
		App:         iot.App{AlertRules: map[string]float64{"temperature_c": 60}},
	})
	if err != nil {
		return err
	}
	fmt.Println("\n-- catalog:")
	for _, m := range s.Catalog() {
		fmt.Printf("   %s v%d by %s (audited: %v) — %s\n      permissions: %v\n",
			m.Name, m.Version, m.Publisher, m.Audited, m.Description, m.Permissions)
	}
	d, err := s.Install("casey", "iot")
	if err != nil {
		return err
	}
	fmt.Println("\n-- one-click installed for 'casey'; registering a device and querying it")
	for _, op := range []struct{ op, body string }{
		{"register", `{"name":"thermostat","kind":"climate"}`},
		{"command", `{"device":"thermostat","action":"read"}`},
		{"dashboard", ""},
	} {
		resp, _, err := d.Invoke(d.ClientContext(), op.op, []byte(op.body))
		if err != nil {
			return err
		}
		fmt.Printf("   %-10s -> %d %s\n", op.op, resp.Status, truncate(string(resp.Body), 80))
	}
	fmt.Println("\n-- per-app resource report:")
	for _, r := range s.Report("casey") {
		fmt.Printf("   %s: %.0f requests, %.3f GB-s, %d bytes stored, %.0f queue ops\n",
			r.App, r.LambdaRequests, r.GBSeconds, r.StorageBytes, r.SQSRequests)
	}
	fmt.Println("\n-- per-app cost (list price) and account bill:")
	costs, accountTotal := s.Costs("casey")
	for _, c := range costs {
		fmt.Printf("   %-12s $%.6f/month at list price\n", c.App, c.ListPrice.Dollars())
	}
	fmt.Printf("   account bill after free tiers: %s\n", accountTotal)
	if st, ok := cloud.Gateway.Stats(d.Endpoint); ok {
		fmt.Printf("\n-- endpoint %s: %d served, %d throttled, mean run %v\n",
			d.Endpoint, st.Requests, st.Rejected, st.MeanRun.Round(time.Millisecond))
	}
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "   " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
