package main

import (
	"fmt"
	"time"

	diy "repro"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

// metricsDemo walks the CloudWatch-sim observability layer: the plane
// interceptor auto-publishes RED+cost series for every service the
// chat workload touches, two alarms watch the spend and the lambda
// latency, and the dashboard itself shows up as a line on the bill.
func metricsDemo() error {
	fmt.Println("== CloudWatch-sim: RED metrics, alarms, and what observing costs ==")
	// Interactive runs measure the telemetry plane's own overhead on the
	// host clock; simulated/test runs never inject one, so they stay
	// deterministic and report zero.
	metrics.SetHostClock(func() int64 { return time.Now().UnixNano() })
	cloud, err := diy.NewCloud(diy.CloudOptions{Name: "metrics-demo", SelfTelemetry: true})
	if err != nil {
		return err
	}

	fmt.Println("\n-- installing group chat for 'casey' (members casey, dana)")
	room, err := diy.InstallChat(cloud, "casey", "casey", "dana")
	if err != nil {
		return err
	}
	casey := diy.NewChatClient(room, "casey", "laptop")
	dana := diy.NewChatClient(room, "dana", "phone")
	if _, err := casey.Session(); err != nil {
		return err
	}
	if _, err := dana.Session(); err != nil {
		return err
	}

	// Alarms go in before the traffic, anchored on the virtual clock so
	// the evaluation grid — and thus the transition log — is the same on
	// every run. The budget is deliberately tiny so the demo crosses it.
	const alarmPeriod = 10 * time.Minute
	budget := pricing.FromDollars(0.0002)
	fmt.Printf("\n-- arming a %s monthly budget alarm and a lambda latency alarm\n",
		fmt.Sprintf("$%.4f", budget.Dollars()))
	announce := func(tr metrics.Transition) { fmt.Printf("   [alarm] %s\n", tr) }
	budgetAlarm, err := cloud.Metrics.PutAlarm(
		metrics.BudgetAlarm("monthly-budget", budget, alarmPeriod), cloud.Clock.Now(), announce)
	if err != nil {
		return err
	}
	latencyAlarm, err := cloud.Metrics.PutAlarm(metrics.AlarmConfig{
		Name:        "chat-latency-avg",
		Namespace:   "lambda/" + room.FnName,
		Metric:      metrics.MetricPlaneLatencyMs,
		Stat:        metrics.StatAvg,
		Period:      alarmPeriod,
		EvalPeriods: 2,
		Comparison:  metrics.GreaterThanThreshold,
		Threshold:   1000, // ms; the simulated sends run far below this
		Missing:     metrics.MissingNotBreaching,
	}, cloud.Clock.Now(), announce)
	if err != nil {
		return err
	}

	fmt.Println("\n-- driving 40 chat sends (no per-service metrics code anywhere):")
	for i := 0; i < 40; i++ {
		cloud.Clock.Advance(90 * time.Second)
		if _, err := casey.Send(fmt.Sprintf("observable message %d", i)); err != nil {
			return err
		}
		if _, err := dana.Receive(nil, 20*time.Second); err != nil {
			return err
		}
	}
	// One unauthorized read against the room's bucket: the interceptor
	// files it under the denials series, not errors.
	mallory := &sim.Context{Principal: "mallory", App: "snoop", Cursor: sim.NewCursor(cloud.Clock.Now())}
	if _, err := cloud.S3.Get(mallory, room.Bucket, "history"); err == nil {
		return fmt.Errorf("mallory read the chat bucket")
	} else {
		fmt.Printf("   plus one snooping attempt, denied: %v\n", err)
	}

	// One catch-up call replays every elapsed alarm period in order.
	cloud.Metrics.EvaluateAlarms(cloud.Clock.Now().Add(alarmPeriod))

	var zero time.Time
	fmt.Println("\n-- per-op RED+cost (top table, whole run):")
	fmt.Printf("   %-34s %6s %5s %5s %9s %9s %14s\n",
		"SERIES", "REQS", "ERR", "DENY", "P50", "P99", "AVG $/REQ")
	for _, r := range cloud.Metrics.TopTable(zero, zero) {
		perReq := "-"
		if r.Requests > 0 {
			perReq = fmt.Sprintf("$%.9f", r.CostNanos/r.Requests/1e9)
		}
		fmt.Printf("   %-34s %6.0f %5.0f %5.0f %7.1fms %7.1fms %14s\n",
			r.Namespace, r.Requests, r.Errors, r.Denials, r.P50Ms, r.P99Ms, perReq)
	}

	fmt.Println("\n-- alarm states after the run:")
	for _, a := range []*metrics.Alarm{budgetAlarm, latencyAlarm} {
		fmt.Printf("   %-18s %s (%d transition(s))\n", a.Config().Name, a.State(), len(a.Transitions()))
	}

	fmt.Println("\n-- what this dashboard would cost at CloudWatch's 2017 prices:")
	var list pricing.Money
	obsMeter := pricing.NewMeter()
	for _, u := range cloud.Metrics.Usage() {
		list += cloud.Book.ListPrice(u)
		obsMeter.Add(u)
	}
	billed := pricing.Compute(cloud.Book, obsMeter).
		TotalOf(pricing.CWMetricMonths, pricing.CWAlarmMonths)
	fmt.Printf("   %d series + %d alarms -> $%.6f/mo list, $%.6f/mo after the 10/10 free tier\n",
		cloud.Metrics.SeriesCount(), cloud.Metrics.AlarmCount(), list.Dollars(), billed.Dollars())

	// The telemetry plane observing itself: counters for the batching
	// machinery, published as ordinary telemetry.* series through the
	// same registry it serves.
	cloud.PublishSelfTelemetry(cloud.Clock.Now())
	st := cloud.Metrics.SelfStats()
	ls := cloud.Logs.SelfStats()
	fmt.Println("\n-- telemetry self-observation (the cost of watching):")
	fmt.Printf("   metric samples batched   %8d in %d flushes\n", st.BatchedSamples, st.Flushes)
	fmt.Printf("   log events ingested      %8d (%d bytes) in %d flushes\n", ls.Events, ls.Bytes, ls.Flushes)
	fmt.Printf("   interceptor overhead     %8.3f ms host time\n", float64(st.OverheadNs)/1e6)

	fmt.Println("\n-- Prometheus-style exposition (scrape of the whole run):")
	fmt.Print(indent(cloud.Metrics.Exposition(zero, zero)))
	return nil
}
