package main

import (
	"fmt"
	"time"

	diy "repro"
	"repro/internal/cloudsim/logs"
	"repro/internal/pricing"
)

// logsDemo walks the CloudWatch Logs-sim plane: every API call the
// chat workload makes lands in a plane/<service> group, the lambda
// platform writes real-shaped START/END/REPORT lines, KMS mirrors its
// audit trail into kms/audit, and an Insights-style query engine
// turns the raw text back into the numbers the operator cares about.
func logsDemo() error {
	fmt.Println("== CloudWatch Logs-sim: structured logs, REPORT lines, Insights queries ==")
	cloud, err := diy.NewCloud(diy.CloudOptions{Name: "logs-demo"})
	if err != nil {
		return err
	}

	fmt.Println("\n-- installing group chat for 'casey' (members casey, dana)")
	room, err := diy.InstallChat(cloud, "casey", "casey", "dana")
	if err != nil {
		return err
	}
	casey := diy.NewChatClient(room, "casey", "laptop")
	dana := diy.NewChatClient(room, "dana", "phone")
	if _, err := casey.Session(); err != nil {
		return err
	}
	if _, err := dana.Session(); err != nil {
		return err
	}

	fmt.Println("\n-- driving 25 chat sends (no logging code in the app):")
	for i := 0; i < 25; i++ {
		cloud.Clock.Advance(90 * time.Second)
		if _, err := casey.Send(fmt.Sprintf("logged message %d", i)); err != nil {
			return err
		}
		if _, err := dana.Receive(nil, 20*time.Second); err != nil {
			return err
		}
	}
	fmt.Println("   done; every call left a line in the log plane")

	fmt.Println("\n-- log groups after the run:")
	fmt.Printf("   %-24s %8s %8s %10s %10s\n", "GROUP", "STREAMS", "EVENTS", "BYTES", "RETENTION")
	for _, g := range cloud.Logs.Inventory() {
		ret := "infinite"
		if g.Retention > 0 {
			ret = g.Retention.String()
		}
		fmt.Printf("   %-24s %8d %8d %10d %10s\n", g.Name, g.Streams, g.Events, g.Bytes, ret)
	}

	fmt.Printf("\n-- tail %s (last 3 events, what `aws logs tail` would show):\n",
		logs.LambdaGroup(room.FnName))
	for _, e := range cloud.Logs.Tail(logs.LambdaGroup(room.FnName), 3) {
		fmt.Printf("   [%s] %s\n", e.Stream, firstLine(e.Message))
	}

	// Each query names its group by a registry expression at the call
	// site — the loggroup analyzer's call-site rule, demonstrated.
	var zero time.Time
	show := func(title, q string, res *logs.QueryResult, err error) error {
		if err != nil {
			return err
		}
		fmt.Printf("\n-- insights: %s\n", title)
		fmt.Printf("   query> %s\n", q)
		fmt.Print(indent(res.Render()))
		return nil
	}
	qBilled := `filter @message like "REPORT RequestId" | parse @message "Billed Duration: * ms" as billed_ms | stats count(*) as invokes, pct(billed_ms, 50) as med_billed_ms`
	res, err := cloud.Logs.Query(logs.LambdaGroup(room.FnName), qBilled, zero, zero)
	if err := show("median billed duration from REPORT lines alone", qBilled, res, err); err != nil {
		return err
	}
	qMix := `stats count(*) as calls by @logStream, outcome | sort calls desc`
	res, err = cloud.Logs.Query(logs.PlaneGroup("s3"), qMix, zero, zero)
	if err := show("request mix on the S3 plane", qMix, res, err); err != nil {
		return err
	}
	qKMS := `stats count(*) as calls by principal, action | sort calls desc | limit 5`
	res, err = cloud.Logs.Query(logs.LogGroupKMSAudit, qKMS, zero, zero)
	if err := show("KMS activity by principal", qKMS, res, err); err != nil {
		return err
	}

	fmt.Println("\n-- what this evidence trail costs at CloudWatch Logs' 2017 prices:")
	var list pricing.Money
	logMeter := pricing.NewMeter()
	for _, u := range cloud.Logs.Usage() {
		list += cloud.Book.ListPrice(u)
		logMeter.Add(u)
	}
	billed := pricing.Compute(cloud.Book, logMeter).
		TotalOf(pricing.CWLogsIngestGB, pricing.CWLogsStorageGBMo)
	fmt.Printf("   %d bytes ingested, %d stored -> $%.6f/mo list, $%.6f/mo after the 5 GB/5 GB free tier\n",
		cloud.Logs.IngestedBytes(), cloud.Logs.StoredBytes(), list.Dollars(), billed.Dollars())
	return nil
}

// firstLine trims a multi-segment log message for one-line display.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
