package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

// fleetDemo runs the fleet-scale experiment: N independent DIY
// accounts, each its own simulated cloud, replayed deterministically
// across all cores.
func fleetDemo(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	accounts := fs.Int("accounts", 1000, "fleet size to model")
	span := fs.Duration("span", 30*time.Minute, "simulated activity window per account")
	seed := fs.Int64("seed", 1, "fleet master seed")
	maxSim := fs.Int("max-simulated", 10000, "cap on accounts actually simulated (larger fleets are sampled, with the scaling reported)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); never affects results")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := experiments.RunFleet(fleet.Config{
		Accounts:     *accounts,
		MaxSimulated: *maxSim,
		Seed:         *seed,
		Span:         *span,
		Workers:      *workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}
