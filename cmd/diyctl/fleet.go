package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cloudsim/metrics"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/fleet/telemetry"
)

// fleetDemo runs the fleet-scale experiment: N independent DIY
// accounts, each its own simulated cloud, replayed deterministically
// across all cores. With telemetry on (the default) the fleet control
// tower renders cross-account rollups after the run report; everything
// host-time-dependent (live -watch progress, phase timings) goes to
// stderr so stdout stays bit-identical across replays — check.sh diffs
// it.
func fleetDemo(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	accounts := fs.Int("accounts", 1000, "fleet size to model")
	span := fs.Duration("span", 30*time.Minute, "simulated activity window per account")
	seed := fs.Int64("seed", 1, "fleet master seed")
	maxSim := fs.Int("max-simulated", 10000, "cap on accounts actually simulated (larger fleets are sampled, with the scaling reported)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); never affects results")
	tel := fs.Bool("telemetry", true, "attach the fleet control tower (per-account CloudWatch rollups, shard counters, phase timers)")
	topN := fs.Int("top", 5, "accounts listed in the control tower's most-expensive table")
	watch := fs.Bool("watch", false, "print live shard/account progress to stderr while the fleet drains")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile (with shard/phase pprof labels) to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := fleet.Config{
		Accounts:     *accounts,
		MaxSimulated: *maxSim,
		Seed:         *seed,
		Span:         *span,
		Workers:      *workers,
	}
	var tower *telemetry.Tower
	if *tel {
		// Interactive runs get real host-clock phase timings; simulated
		// and test runs never inject one, so their timers read zero and
		// replay identity is untouched.
		metrics.SetHostClock(func() int64 { return time.Now().UnixNano() })
		tower = telemetry.NewTower(telemetry.Options{TopN: *topN})
		cfg.Tower = tower
	}

	stopWatch := func() {}
	if *watch && tower != nil {
		done := make(chan struct{})
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			tick := time.NewTicker(200 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					p := tower.Progress()
					fmt.Fprintf(os.Stderr, "\rfleet: %d/%d accounts, %d/%d shards, %d requests, %d cold, %d events",
						p.AccountsDone, p.AccountsTotal, p.ShardsDone, p.ShardsTotal, p.Requests, p.ColdStarts, p.Events)
				}
			}
		}()
		stopWatch = func() {
			close(done)
			<-finished
			fmt.Fprintln(os.Stderr)
		}
	}

	rep, err := experiments.RunFleet(cfg)
	stopWatch()
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if tower != nil {
		fmt.Print(tower.RenderDashboard())
		fmt.Fprint(os.Stderr, tower.RenderHostPhases())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
