package main

import (
	"flag"
	"fmt"
	"time"

	diy "repro"
	"repro/internal/cloudsim/sortutil"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/fleet/telemetry"
	"repro/internal/pricing"
)

// traceDemo demonstrates the X-Ray-sim pillar. The default mode sends
// two traced chat messages — one against a cold container, one warm —
// prints each as a flame-style span tree with per-hop latency and
// list-price cost, cross-checks the trace's cost ledger against the
// pricing meter, then shows what the columnar store derives from the
// same traces: the service map, a filter-expression query, and the
// X-Ray bill. With -fleet it instead samples traces across a whole
// fleet of accounts and renders the control tower's fleet-wide
// service map and critical-path rollup (stdout is bit-identical
// across replays — check.sh diffs it).
func traceDemo(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	fleetMode := fs.Bool("fleet", false, "sample traces across a fleet and render the fleet-wide service map")
	accounts := fs.Int("accounts", 300, "fleet size (with -fleet)")
	span := fs.Duration("span", 15*time.Minute, "simulated activity window per account (with -fleet)")
	seed := fs.Int64("seed", 1, "fleet master seed (with -fleet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fleetMode {
		return traceFleet(*accounts, *span, *seed)
	}

	fmt.Println("== distributed request tracing and cost attribution ==")
	cloud, err := diy.NewCloud(diy.CloudOptions{Name: "trace-demo"})
	if err != nil {
		return err
	}
	room, err := diy.InstallChat(cloud, "casey", "casey", "dana")
	if err != nil {
		return err
	}
	casey := diy.NewChatClient(room, "casey", "laptop")
	dana := diy.NewChatClient(room, "dana", "phone")
	if _, err := casey.Session(); err != nil {
		return err
	}
	if _, err := dana.Session(); err != nil {
		return err
	}

	// Idle past the warm-pool TTL so the next invocation provisions a
	// fresh container: the trace shows where the cold start hides.
	cloud.Clock.Advance(10 * time.Minute)
	before := cloud.Meter.Snapshot()
	fmt.Println("\n-- first message after 10 idle minutes (cold container):")
	tr, _, err := casey.SendTraced("good morning — this send pays the cold start")
	if err != nil {
		return err
	}
	fmt.Print(indent(tr.Render(cloud.Book)))

	// The trace's ledger and the billing meter saw the same usage.
	diff := meterDiff(before, cloud.Meter.Snapshot())
	var metered pricing.Money
	for _, u := range diff {
		metered += cloud.Book.ListPrice(u)
	}
	fmt.Printf("\n   trace cost %s == metered cost %s for the same flow\n",
		fmtMoney(tr.Cost(cloud.Book)), fmtMoney(metered))

	fmt.Println("\n-- second message 30 seconds later (warm container):")
	cloud.Clock.Advance(30 * time.Second)
	tr2, _, err := casey.SendTraced("and this one rides a warm container")
	if err != nil {
		return err
	}
	fmt.Print(indent(tr2.Render(cloud.Book)))
	fmt.Printf("\n   cold send: %v and %s; warm send: %v and %s\n",
		tr.Duration().Round(time.Millisecond), fmtMoney(tr.Cost(cloud.Book)),
		tr2.Duration().Round(time.Millisecond), fmtMoney(tr2.Cost(cloud.Book)))

	// What the columnar store derives from the same stored traces.
	st := cloud.Tracer
	last, _ := st.Last()
	fmt.Printf("   store holds %d trace(s); latest: %q\n", st.Len(), last.Name())

	fmt.Println("\n-- service map derived from the stored traces:")
	fmt.Print(indent(st.ServiceMap(cloud.Book, time.Time{}, time.Time{}).Render()))

	fmt.Println("\n-- filter-expression queries over the store:")
	for _, expr := range []string{
		`annotation.cold_start = true`,
		`service("kms") AND duration > 500ms`,
	} {
		matches, err := st.Query(expr, cloud.Book, time.Time{}, time.Time{})
		if err != nil {
			return err
		}
		fmt.Printf("   %-40q -> %d of %d traces\n", expr, len(matches), st.Len())
	}

	stats := st.Stats()
	var xray pricing.Money
	for _, u := range st.Usage() {
		xray += cloud.Book.ListPrice(u)
	}
	fmt.Printf("\n   x-ray: %d sampling decisions, %d kept, %d stored, %d scanned; list price %s (free tier covers 100k/1M)\n",
		stats.Decided, stats.Kept, stats.Stored, stats.Scanned, fmtMoney(xray))
	return nil
}

// traceFleet runs a fleet with per-account head sampling (X-Ray's
// reservoir + 5% rule, seeded from each account's workload substream)
// and renders the control tower's fleet-wide trace rollups.
func traceFleet(accounts int, span time.Duration, seed int64) error {
	tower := telemetry.NewTower(telemetry.Options{})
	cfg := fleet.Config{
		Accounts: accounts,
		Seed:     seed,
		Span:     span,
		Trace:    true,
		Tower:    tower,
	}
	rep, err := experiments.RunFleet(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	fmt.Print(tower.RenderTraceDashboard())
	return nil
}

// meterDiff subtracts an earlier meter snapshot from a later one,
// returning the usage metered in between.
func meterDiff(before, after []pricing.Usage) []pricing.Usage {
	type key struct {
		kind     pricing.Kind
		resource string
		app      string
	}
	prev := make(map[key]float64, len(before))
	for _, u := range before {
		prev[key{u.Kind, u.Resource, u.App}] += u.Quantity
	}
	var out []pricing.Usage
	for _, u := range after {
		if d := u.Quantity - prev[key{u.Kind, u.Resource, u.App}]; d > 1e-12 {
			out = append(out, pricing.Usage{Kind: u.Kind, Quantity: d, Resource: u.Resource, App: u.App})
		}
	}
	return out
}

func fmtMoney(m pricing.Money) string { return sortutil.FormatMoneyNanos(m.Nanodollars()) }
