package main

import (
	"fmt"
	"time"

	diy "repro"
	"repro/internal/pricing"
)

// traceDemo sends two traced chat messages — one against a cold
// container, one warm — and prints each as a flame-style span tree
// with per-hop latency and list-price cost, then cross-checks the
// trace's cost ledger against the pricing meter.
func traceDemo() error {
	fmt.Println("== distributed request tracing and cost attribution ==")
	cloud, err := diy.NewCloud(diy.CloudOptions{Name: "trace-demo"})
	if err != nil {
		return err
	}
	room, err := diy.InstallChat(cloud, "casey", "casey", "dana")
	if err != nil {
		return err
	}
	casey := diy.NewChatClient(room, "casey", "laptop")
	dana := diy.NewChatClient(room, "dana", "phone")
	if _, err := casey.Session(); err != nil {
		return err
	}
	if _, err := dana.Session(); err != nil {
		return err
	}

	// Idle past the warm-pool TTL so the next invocation provisions a
	// fresh container: the trace shows where the cold start hides.
	cloud.Clock.Advance(10 * time.Minute)
	before := cloud.Meter.Snapshot()
	fmt.Println("\n-- first message after 10 idle minutes (cold container):")
	tr, _, err := casey.SendTraced("good morning — this send pays the cold start")
	if err != nil {
		return err
	}
	fmt.Print(indent(tr.Render(cloud.Book)))

	// The trace's ledger and the billing meter saw the same usage.
	diff := meterDiff(before, cloud.Meter.Snapshot())
	var metered pricing.Money
	for _, u := range diff {
		metered += cloud.Book.ListPrice(u)
	}
	fmt.Printf("\n   trace cost %s == metered cost %s for the same flow\n",
		fmtMoney(tr.Cost(cloud.Book)), fmtMoney(metered))

	fmt.Println("\n-- second message 30 seconds later (warm container):")
	cloud.Clock.Advance(30 * time.Second)
	tr2, _, err := casey.SendTraced("and this one rides a warm container")
	if err != nil {
		return err
	}
	fmt.Print(indent(tr2.Render(cloud.Book)))
	fmt.Printf("\n   cold send: %v and %s; warm send: %v and %s\n",
		tr.Duration().Round(time.Millisecond), fmtMoney(tr.Cost(cloud.Book)),
		tr2.Duration().Round(time.Millisecond), fmtMoney(tr2.Cost(cloud.Book)))
	fmt.Printf("   recorder holds %d trace(s); latest: %q\n",
		cloud.Tracer.Len(), cloud.Tracer.Last().Name())
	return nil
}

// meterDiff subtracts an earlier meter snapshot from a later one,
// returning the usage metered in between.
func meterDiff(before, after []pricing.Usage) []pricing.Usage {
	type key struct {
		kind     pricing.Kind
		resource string
		app      string
	}
	prev := make(map[key]float64, len(before))
	for _, u := range before {
		prev[key{u.Kind, u.Resource, u.App}] += u.Quantity
	}
	var out []pricing.Usage
	for _, u := range after {
		if d := u.Quantity - prev[key{u.Kind, u.Resource, u.App}]; d > 1e-12 {
			out = append(out, pricing.Usage{Kind: u.Kind, Quantity: d, Resource: u.Resource, App: u.App})
		}
	}
	return out
}

func fmtMoney(m pricing.Money) string { return fmt.Sprintf("$%.8f", m.Dollars()) }
